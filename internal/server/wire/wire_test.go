package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/engine/sqltypes"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 1<<16)}
	for _, p := range payloads {
		var buf bytes.Buffer
		wn, err := WriteFrame(&buf, MsgQuery, p)
		if err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		if wn != buf.Len() {
			t.Fatalf("WriteFrame reported %d bytes, wrote %d", wn, buf.Len())
		}
		f, rn, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if rn != wn {
			t.Fatalf("ReadFrame consumed %d bytes, frame was %d", rn, wn)
		}
		if f.Type != MsgQuery || !bytes.Equal(f.Payload, p) {
			t.Fatalf("round trip mismatch: %v", f)
		}
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	if _, err := WriteFrame(io.Discard, MsgBatch, make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("WriteFrame accepted an oversized payload")
	}
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, MsgBatch})
	if _, _, err := ReadFrame(&buf); err == nil {
		t.Fatal("ReadFrame accepted an oversized length")
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, MsgQuery, []byte("SELECT 1")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("ReadFrame accepted a frame truncated to %d/%d bytes", cut, len(full))
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	for _, h := range []Hello{{Version: 1, User: "alice"}, {Version: 7, User: ""}, {Version: 1, User: strings.Repeat("u", 300)}} {
		got, err := DecodeHello(EncodeHello(h))
		if err != nil {
			t.Fatalf("DecodeHello(%+v): %v", h, err)
		}
		if got != h {
			t.Fatalf("hello round trip: got %+v want %+v", got, h)
		}
	}
	if _, err := DecodeHello([]byte("GET / HTTP/1.1\r\n")); err == nil {
		t.Fatal("DecodeHello accepted an HTTP request")
	}
}

func TestWelcomeDoneErrorRoundTrip(t *testing.T) {
	w := Welcome{SessionID: 42, Server: "twmd/1", Proto: ProtocolV1}
	gw, err := DecodeWelcome(EncodeWelcome(w))
	if err != nil || gw != w {
		t.Fatalf("welcome round trip: %+v, %v", gw, err)
	}
	d := Done{Affected: 12, Rows: 99, StatsJSON: `{"rows_scanned":5}`}
	gd, err := DecodeDone(EncodeDone(d, ProtocolV1))
	if err != nil || gd != d {
		t.Fatalf("done round trip: %+v, %v", gd, err)
	}
	e := &Error{Code: CodeBusy, Message: "50 statements in flight"}
	ge, err := DecodeError(EncodeError(e))
	if err != nil || *ge != *e {
		t.Fatalf("error round trip: %+v, %v", ge, err)
	}
	if !IsBusy(ge) {
		t.Fatal("IsBusy(busy error) = false")
	}
	if IsBusy(&Error{Code: CodeInternal}) {
		t.Fatal("IsBusy(internal error) = true")
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	s := sqltypes.MustSchema(
		sqltypes.Column{Name: "i", Type: sqltypes.TypeBigInt},
		sqltypes.Column{Name: "x", Type: sqltypes.TypeDouble},
		sqltypes.Column{Name: "label", Type: sqltypes.TypeVarChar},
	)
	got, err := DecodeSchema(EncodeSchema(s))
	if err != nil {
		t.Fatalf("DecodeSchema: %v", err)
	}
	if got.String() != s.String() {
		t.Fatalf("schema round trip: got %s want %s", got, s)
	}
}

// randomValue draws one value over all encodable types.
func randomValue(rng *rand.Rand) sqltypes.Value {
	switch rng.Intn(5) {
	case 0:
		return sqltypes.Null
	case 1:
		// Include tricky doubles: ±Inf, NaN payloads survive bit-exact.
		switch rng.Intn(5) {
		case 0:
			return sqltypes.NewDouble(math.Inf(1))
		case 1:
			return sqltypes.NewDouble(math.Inf(-1))
		case 2:
			return sqltypes.NewDouble(0)
		default:
			return sqltypes.NewDouble(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(30)-15)))
		}
	case 2:
		return sqltypes.NewBigInt(rng.Int63() - rng.Int63())
	case 3:
		n := rng.Intn(64)
		b := make([]byte, n)
		rng.Read(b)
		return sqltypes.NewVarChar(string(b))
	default:
		return sqltypes.NewBool(rng.Intn(2) == 0)
	}
}

// TestBatchRoundTripProperty drives random batches through the codec
// and requires value-exact reconstruction.
func TestBatchRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2007))
	for trial := 0; trial < 200; trial++ {
		arity := 1 + rng.Intn(8)
		rows := make([]sqltypes.Row, rng.Intn(20))
		for i := range rows {
			row := make(sqltypes.Row, arity)
			for j := range row {
				row[j] = randomValue(rng)
			}
			rows[i] = row
		}
		p, err := EncodeBatch(rows)
		if err != nil {
			t.Fatalf("EncodeBatch: %v", err)
		}
		got, err := DecodeBatch(p)
		if err != nil {
			t.Fatalf("DecodeBatch: %v", err)
		}
		if len(got) != len(rows) {
			t.Fatalf("trial %d: %d rows decoded, want %d", trial, len(got), len(rows))
		}
		for i := range rows {
			for j := range rows[i] {
				a, b := rows[i][j], got[i][j]
				if a.Type() != b.Type() {
					t.Fatalf("trial %d row %d col %d: type %v != %v", trial, i, j, a.Type(), b.Type())
				}
				// Bit-exact for doubles (NaN != NaN under Compare).
				af, aok := a.Float()
				bf, bok := b.Float()
				if aok != bok || (aok && math.Float64bits(af) != math.Float64bits(bf)) {
					t.Fatalf("trial %d row %d col %d: %v != %v", trial, i, j, a, b)
				}
				if a.Str() != b.Str() {
					t.Fatalf("trial %d row %d col %d: %q != %q", trial, i, j, a.Str(), b.Str())
				}
			}
		}
	}
}

// TestDecodeBatchRejectsForgedHeaders hand-crafts batch headers whose
// row counts are implausible for the payload: a zero arity with a huge
// row count (any n × 0 = 0), and counts whose product overflows int64
// to a negative value. Both must be rejected before the row-slice
// allocation trusts n, or a 12-byte frame can demand ~100GB.
func TestDecodeBatchRejectsForgedHeaders(t *testing.T) {
	forged := []struct{ n, arity uint32 }{
		{math.MaxUint32, 0},              // product 0 regardless of n
		{1 << 20, 0},                     // ditto
		{math.MaxUint32, math.MaxUint32}, // int64 product wraps negative
		{1 << 31, 1 << 31},               // large positive product
		{1 << 16, 1 << 16},               // plausible-looking, no payload
	}
	for _, h := range forged {
		p := binary.LittleEndian.AppendUint32(nil, h.n)
		p = binary.LittleEndian.AppendUint32(p, h.arity)
		if _, err := DecodeBatch(p); err == nil {
			t.Errorf("DecodeBatch accepted forged header n=%d arity=%d", h.n, h.arity)
		}
	}
	// The legitimate empty batch (n=0, arity=0) still decodes.
	p, err := EncodeBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rows, err := DecodeBatch(p); err != nil || len(rows) != 0 {
		t.Fatalf("empty batch: %d rows, err %v", len(rows), err)
	}
	// Zero-arity rows are unencodable (the decoder cannot tell them
	// from a forged header).
	if _, err := EncodeBatch([]sqltypes.Row{{}}); err == nil {
		t.Fatal("EncodeBatch accepted zero-arity rows")
	}
}

// FuzzDecodeFrameStream throws arbitrary bytes at the frame reader and
// payload decoders: they must error or succeed, never panic, and any
// successfully decoded batch must re-encode.
func FuzzDecodeFrameStream(f *testing.F) {
	var seed bytes.Buffer
	WriteFrame(&seed, MsgHello, EncodeHello(Hello{Version: 1, User: "u"}))
	WriteFrame(&seed, MsgDone, EncodeDone(Done{Affected: 3}, ProtocolV1))
	b, _ := EncodeBatch([]sqltypes.Row{{sqltypes.NewDouble(1.5), sqltypes.NewVarChar("a")}})
	WriteFrame(&seed, MsgBatch, b)
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{5, 0, 0, 0, MsgQuery, 1, 0, 0, 0, 'x'})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			fr, _, err := ReadFrame(r)
			if err != nil {
				return
			}
			// Decode against every parser: none may panic.
			DecodeHello(fr.Payload)
			DecodeWelcome(fr.Payload)
			DecodeStatement(fr.Payload)
			DecodeSchema(fr.Payload)
			DecodeDone(fr.Payload)
			DecodeError(fr.Payload)
			if rows, err := DecodeBatch(fr.Payload); err == nil {
				if _, err := EncodeBatch(rows); err != nil {
					t.Fatalf("decoded batch failed to re-encode: %v", err)
				}
			}
		}
	})
}

func TestConnSendRecv(t *testing.T) {
	var buf bytes.Buffer
	c := &Conn{R: &buf, W: bufio.NewWriter(&buf)}
	if err := c.Send(MsgPing, nil); err != nil {
		t.Fatal(err)
	}
	f, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != MsgPing {
		t.Fatalf("got frame type %#x, want ping", f.Type)
	}
	if c.BytesWritten.Load() != 5 || c.BytesRead.Load() != 5 {
		t.Fatalf("byte accounting: wrote %d read %d, want 5/5", c.BytesWritten.Load(), c.BytesRead.Load())
	}
}
