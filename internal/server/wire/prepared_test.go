package wire

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/engine/sqltypes"
)

func TestPrepareRoundTrip(t *testing.T) {
	sql := "SELECT a FROM t WHERE b = ?"
	got, err := DecodePrepare(EncodePrepare(sql))
	if err != nil || got != sql {
		t.Fatalf("DecodePrepare = %q, %v", got, err)
	}
}

func TestPreparedRoundTrip(t *testing.T) {
	for _, pi := range []PreparedInfo{
		{Handle: 1, NumParams: 0},
		{Handle: math.MaxInt64, NumParams: 32},
		{Handle: 0, NumParams: 1},
	} {
		got, err := DecodePrepared(EncodePrepared(pi))
		if err != nil || got != pi {
			t.Fatalf("DecodePrepared(%+v) = %+v, %v", pi, got, err)
		}
	}
}

func TestExecPreparedRoundTrip(t *testing.T) {
	args := []sqltypes.Value{
		sqltypes.NewBigInt(42),
		sqltypes.NewDouble(1.5),
		sqltypes.NewVarChar("x"),
		sqltypes.NewBool(true),
		sqltypes.Null,
	}
	p, err := EncodeExecPrepared(7, args)
	if err != nil {
		t.Fatal(err)
	}
	h, got, err := DecodeExecPrepared(p)
	if err != nil || h != 7 {
		t.Fatalf("handle %d err %v", h, err)
	}
	if len(got) != len(args) {
		t.Fatalf("got %d args, want %d", len(got), len(args))
	}
	for i := range args {
		if got[i].Type() != args[i].Type() || got[i].String() != args[i].String() {
			t.Fatalf("arg %d: got %v, want %v", i, got[i], args[i])
		}
	}
	// Zero args is a legitimate execute.
	p, err = EncodeExecPrepared(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h, got, err := DecodeExecPrepared(p); err != nil || h != 3 || len(got) != 0 {
		t.Fatalf("empty execute: %d %v %v", h, got, err)
	}
}

func TestClosePreparedRoundTrip(t *testing.T) {
	h, err := DecodeClosePrepared(EncodeClosePrepared(99))
	if err != nil || h != 99 {
		t.Fatalf("DecodeClosePrepared = %d, %v", h, err)
	}
}

// Truncating a valid payload at every byte boundary must produce an
// error (or, for string-ish frames, a shorter valid decode) — never a
// panic or an over-read.
func TestPreparedFramesTruncated(t *testing.T) {
	ep, err := EncodeExecPrepared(7, []sqltypes.Value{sqltypes.NewBigInt(1), sqltypes.NewVarChar("abc")})
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{
		EncodePrepared(PreparedInfo{Handle: 5, NumParams: 2}),
		ep,
		EncodeClosePrepared(12),
	}
	for _, full := range payloads {
		for cut := 0; cut < len(full); cut++ {
			p := full[:cut]
			DecodePrepared(p)
			DecodeExecPrepared(p)
			DecodeClosePrepared(p)
		}
	}
}

// A forged argument count must be rejected before any allocation
// trusts it: a 13-byte frame must not demand a multi-gigabyte slice.
func TestDecodeExecPreparedRejectsForgedCount(t *testing.T) {
	for _, n := range []uint32{math.MaxUint32, 1 << 30, 1 << 16} {
		p := binary.LittleEndian.AppendUint64(nil, 7)
		p = binary.LittleEndian.AppendUint32(p, n)
		if _, _, err := DecodeExecPrepared(p); err == nil {
			t.Errorf("DecodeExecPrepared accepted forged count %d with no payload", n)
		}
	}
}

func TestDecodePreparedRejectsForgedNumParams(t *testing.T) {
	p := binary.LittleEndian.AppendUint64(nil, 1)
	p = binary.LittleEndian.AppendUint32(p, math.MaxUint32)
	if _, err := DecodePrepared(p); err == nil {
		t.Error("DecodePrepared accepted an implausible param count")
	}
}

// Trailing garbage after a complete frame body is a protocol error,
// not silently ignored — it would mean the peer and we disagree about
// framing.
func TestPreparedFramesRejectTrailingBytes(t *testing.T) {
	if _, err := DecodeClosePrepared(append(EncodeClosePrepared(1), 0xFF)); err == nil {
		t.Error("DecodeClosePrepared accepted trailing bytes")
	}
	if _, err := DecodePrepared(append(EncodePrepared(PreparedInfo{Handle: 1}), 0xFF)); err == nil {
		t.Error("DecodePrepared accepted trailing bytes")
	}
	ep, err := EncodeExecPrepared(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeExecPrepared(append(ep, 0xFF)); err == nil {
		t.Error("DecodeExecPrepared accepted trailing bytes")
	}
}

// FuzzDecodePreparedFrames throws arbitrary bytes at the three new
// decoders: error or succeed, never panic, and a successful
// ExecPrepared decode must re-encode.
func FuzzDecodePreparedFrames(f *testing.F) {
	ep, _ := EncodeExecPrepared(9, []sqltypes.Value{sqltypes.NewDouble(2.5), sqltypes.Null})
	f.Add(EncodePrepared(PreparedInfo{Handle: 3, NumParams: 1}))
	f.Add(ep)
	f.Add(EncodeClosePrepared(4))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		DecodePrepare(data)
		DecodePrepared(data)
		DecodeClosePrepared(data)
		if h, args, err := DecodeExecPrepared(data); err == nil {
			if _, err := EncodeExecPrepared(h, args); err != nil {
				t.Fatalf("decoded exec-prepared failed to re-encode: %v", err)
			}
		}
	})
}
