package wire

import (
	"testing"

	"repro/internal/engine/sqltypes"
)

func testHeader() *TraceHeader {
	th := &TraceHeader{}
	for i := range th.TraceID {
		th.TraceID[i] = byte(i + 1)
	}
	for i := range th.SpanID {
		th.SpanID[i] = byte(0xA0 + i)
	}
	return th
}

func TestWelcomeProtoNegotiation(t *testing.T) {
	// A v1 welcome is byte-identical to the pre-versioning encoding: no
	// trailing proto, decoded as ProtocolV1.
	v1 := Welcome{SessionID: 7, Server: "twmd/1"}
	got, err := DecodeWelcome(EncodeWelcome(v1))
	if err != nil {
		t.Fatal(err)
	}
	if got.Proto != ProtocolV1 {
		t.Fatalf("v1 welcome decoded proto %d, want %d", got.Proto, ProtocolV1)
	}

	v2 := Welcome{SessionID: 7, Server: "twmd/1", Proto: ProtocolV2}
	got, err = DecodeWelcome(EncodeWelcome(v2))
	if err != nil {
		t.Fatal(err)
	}
	if got != v2 {
		t.Fatalf("v2 welcome round trip: got %+v want %+v", got, v2)
	}
	if e1, e2 := EncodeWelcome(v1), EncodeWelcome(v2); len(e2) != len(e1)+4 {
		t.Fatalf("v2 welcome must add exactly the trailing u32: v1=%d v2=%d bytes", len(e1), len(e2))
	}
}

func TestDoneTraceID(t *testing.T) {
	d := Done{Rows: 3, StatsJSON: "{}", TraceID: "0102030405060708090a0b0c0d0e0f10"}

	// On a v2 session the trace ID rides the Done frame.
	got, err := DecodeDone(EncodeDone(d, ProtocolV2))
	if err != nil {
		t.Fatal(err)
	}
	if got != d {
		t.Fatalf("v2 done round trip: got %+v want %+v", got, d)
	}

	// On a v1 session the encoder must drop it — the v1 decoder rejects
	// trailing bytes.
	got, err = DecodeDone(EncodeDone(d, ProtocolV1))
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != "" {
		t.Fatalf("v1 done carried trace id %q", got.TraceID)
	}
}

func TestStatementTraceRoundTrip(t *testing.T) {
	th := testHeader()
	sql := "SELECT sum(v) FROM x"

	p := EncodeStatementTrace(sql, th)
	gotSQL, gotTH, err := DecodeStatementTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	if gotSQL != sql || gotTH == nil || *gotTH != *th {
		t.Fatalf("round trip: sql=%q th=%+v", gotSQL, gotTH)
	}

	// Headerless form is byte-identical to v1 and decodes with nil header.
	p1 := EncodeStatementTrace(sql, nil)
	if string(p1) != string(EncodeStatement(sql)) {
		t.Fatal("headerless EncodeStatementTrace differs from v1 EncodeStatement")
	}
	if _, gotTH, err = DecodeStatementTrace(p1); err != nil || gotTH != nil {
		t.Fatalf("headerless decode: th=%+v err=%v", gotTH, err)
	}

	// The strict v1 decoder must reject the extended payload rather than
	// silently mis-parse it.
	if _, err := DecodeStatement(p); err == nil {
		t.Fatal("v1 DecodeStatement accepted a trace-extended payload")
	}

	// Truncated or padded headers are protocol errors.
	for _, bad := range [][]byte{p[:len(p)-1], append(append([]byte(nil), p...), 0)} {
		if _, _, err := DecodeStatementTrace(bad); err == nil {
			t.Fatalf("DecodeStatementTrace accepted a %d-byte header remainder", len(bad)-len(p1))
		}
	}
}

func TestExecPreparedTraceRoundTrip(t *testing.T) {
	th := testHeader()
	args := []sqltypes.Value{sqltypes.NewBigInt(9), sqltypes.NewVarChar("k")}

	p, err := EncodeExecPreparedTrace(42, args, th)
	if err != nil {
		t.Fatal(err)
	}
	h, gotArgs, gotTH, err := DecodeExecPreparedTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	if h != 42 || len(gotArgs) != 2 || gotTH == nil || *gotTH != *th {
		t.Fatalf("round trip: h=%d args=%v th=%+v", h, gotArgs, gotTH)
	}

	// Strict v1 decoder rejects the extension; trace decoder accepts the
	// v1 form with a nil header.
	if _, _, err := DecodeExecPrepared(p); err == nil {
		t.Fatal("v1 DecodeExecPrepared accepted a trace-extended payload")
	}
	p1, err := EncodeExecPrepared(42, args)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, gotTH, err := DecodeExecPreparedTrace(p1); err != nil || gotTH != nil {
		t.Fatalf("v1 payload through trace decoder: th=%+v err=%v", gotTH, err)
	}
}

// FuzzDecodeStatementTrace throws arbitrary bytes at the trace-extended
// statement decoder: it must error or succeed, never panic, and any
// successful decode must survive a re-encode/re-decode round trip
// (byte identity isn't required — reserved flag bits are ignored on
// decode and normalized on encode).
func FuzzDecodeStatementTrace(f *testing.F) {
	f.Add(EncodeStatementTrace("SELECT 1", nil))
	f.Add(EncodeStatementTrace("SELECT sum(v) FROM x", testHeader()))
	f.Add(EncodeStatementTrace("", &TraceHeader{}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		sql, th, err := DecodeStatementTrace(data)
		if err != nil {
			return
		}
		sql2, th2, err := DecodeStatementTrace(EncodeStatementTrace(sql, th))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if sql2 != sql || (th == nil) != (th2 == nil) || (th != nil && *th != *th2) {
			t.Fatalf("round trip drift: sql %q->%q th %+v->%+v", sql, sql2, th, th2)
		}
	})
}
