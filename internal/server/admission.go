package server

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/server/wire"
)

// admission bounds concurrent statement execution. Up to max
// statements run at once; up to maxWait more queue for a slot; anything
// beyond that fails fast with the typed busy error instead of queueing
// forever — under overload the server sheds work it could never get to,
// and clients see a clean, retryable signal.
type admission struct {
	slots   chan struct{}
	maxWait int
	waiting atomic.Int64
}

func newAdmission(max, maxWait int) *admission {
	if max <= 0 {
		max = defaultMaxStatements
	}
	if maxWait < 0 {
		maxWait = 0
	}
	return &admission{slots: make(chan struct{}, max), maxWait: maxWait}
}

// acquire takes an execution slot, waiting in the bounded queue when
// the server is saturated. It returns the typed busy error on queue
// overflow and ctx.Err when the caller disconnects while queued.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	// Saturated: join the wait queue if there is room.
	if n := a.waiting.Add(1); n > int64(a.maxWait) {
		a.waiting.Add(-1)
		admissionRejections.Inc()
		return &wire.Error{
			Code: wire.CodeBusy,
			Message: fmt.Sprintf("server at its limit of %d concurrent statements (wait queue %d deep); retry later",
				cap(a.slots), a.maxWait),
		}
	}
	defer a.waiting.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release frees an execution slot.
func (a *admission) release() { <-a.slots }
