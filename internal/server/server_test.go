package server_test

import (
	"context"
	"fmt"
	"math"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	statsudf "repro"
	"repro/internal/engine/db"
	"repro/internal/engine/expr"
	"repro/internal/engine/sqltypes"
	"repro/internal/score"
	"repro/internal/server"
	"repro/internal/server/wire"
	"repro/internal/sqlgen"
	"repro/pkg/client"
)

// startServer opens an engine with the paper's UDFs installed and a
// wire server in front of it on an ephemeral port.
func startServer(t *testing.T, cfg server.Config) (*db.DB, *server.Server) {
	t.Helper()
	sd, err := statsudf.Open(statsudf.Options{Partitions: 4})
	if err != nil {
		t.Fatalf("open engine: %v", err)
	}
	eng := sd.Engine()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	srv := server.New(eng, cfg)
	if err := srv.Start(); err != nil {
		t.Fatalf("start server: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return eng, srv
}

func openPool(t *testing.T, addr, user string, size int) *client.Pool {
	t.Helper()
	p, err := client.Open(client.Config{Addr: addr, User: user, PoolSize: size})
	if err != nil {
		t.Fatalf("open pool: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func mustExecWire(t *testing.T, p *client.Pool, sql string) {
	t.Helper()
	if _, err := p.Exec(context.Background(), sql); err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
}

func TestQueryOverWire(t *testing.T) {
	eng, srv := startServer(t, server.Config{})
	p := openPool(t, srv.Addr(), "tester", 2)

	mustExecWire(t, p, "CREATE TABLE X (i BIGINT, X1 DOUBLE, grp VARCHAR)")
	for i := 1; i <= 5; i++ {
		mustExecWire(t, p, fmt.Sprintf("INSERT INTO X VALUES (%d, %d.5, 'g%d')", i, i, i%2))
	}
	rows, err := p.Query(context.Background(), "SELECT i, X1, grp FROM X ORDER BY i")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(rows.Rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows.Rows))
	}
	if rows.Schema == nil || rows.Schema.Len() != 3 {
		t.Fatalf("schema = %v", rows.Schema)
	}
	if got := rows.Rows[4][1].String(); got != "5.5" {
		t.Fatalf("row 5 X1 = %s, want 5.5", got)
	}
	if rows.StatsJSON == "" || !strings.Contains(rows.StatsJSON, "rows_scanned") {
		t.Fatalf("Done carried no stats: %q", rows.StatsJSON)
	}

	// The statements landed in the engine's query ring tagged with this
	// network session and remote address.
	var tagged bool
	for _, r := range eng.RecentQueries() {
		if r.SessionID > 0 && strings.HasPrefix(r.RemoteAddr, "127.0.0.1:") {
			tagged = true
			break
		}
	}
	if !tagged {
		t.Fatal("no query ring record carries the wire session id and remote addr")
	}
	// In-process statements stay untagged.
	if _, err := eng.Exec("SELECT i FROM X ORDER BY i"); err != nil {
		t.Fatal(err)
	}
	if rec := eng.RecentQueries()[0]; rec.SessionID != 0 || rec.RemoteAddr != "" {
		t.Fatalf("in-process statement tagged with session %d addr %q", rec.SessionID, rec.RemoteAddr)
	}
}

func TestStreamedQueryOverWire(t *testing.T) {
	_, srv := startServer(t, server.Config{BatchRows: 3})
	p := openPool(t, srv.Addr(), "tester", 1)

	mustExecWire(t, p, "CREATE TABLE S (v DOUBLE)")
	for i := 0; i < 10; i++ {
		mustExecWire(t, p, fmt.Sprintf("INSERT INTO S VALUES (%d.0)", i))
	}
	// No ORDER BY: the server streams this in self-describing batches
	// with the schema frame trailing.
	var n int
	var sum float64
	schema, err := p.QueryStream(context.Background(), "SELECT v * 2 FROM S", func(r sqltypes.Row) error {
		f, _ := r[0].Float()
		sum += f
		n++
		return nil
	})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if n != 10 || sum != 90 {
		t.Fatalf("streamed %d rows sum %v, want 10 rows sum 90", n, sum)
	}
	if schema == nil || schema.Len() != 1 {
		t.Fatalf("schema = %v", schema)
	}
}

// TestScoringByteIdentical is the acceptance check: a scoring query
// through the pooled client against the wire server returns exactly
// the values the embedded engine returns in-process.
func TestScoringByteIdentical(t *testing.T) {
	sd, err := statsudf.Open(statsudf.Options{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	eng := sd.Engine()
	const dims = 4
	beta := []float64{0.5, -1.25, 2, 0}
	if err := sd.GenerateRegression("X", statsudf.MixtureConfig{N: 500, D: dims, Seed: 11}, 10, beta, 2); err != nil {
		t.Fatalf("generate: %v", err)
	}
	lr, err := sd.LinearRegression("X", statsudf.DimColumns(dims), "Y")
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	if err := score.SaveLinReg(eng, "BETA", lr); err != nil {
		t.Fatalf("save model: %v", err)
	}

	srv := server.New(eng, server.Config{Addr: "127.0.0.1:0", BatchRows: 64})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := openPool(t, srv.Addr(), "scorer", 1)

	// ORDER BY pins row order: the parallel scan's collection order is
	// nondeterministic without it, on both paths.
	sql := sqlgen.RegScoreUDF("X", "BETA", "i", sqlgen.Dims(dims)) + " ORDER BY i"
	local, err := eng.Exec(sql)
	if err != nil {
		t.Fatalf("in-process: %v", err)
	}
	remote, err := p.Query(context.Background(), sql)
	if err != nil {
		t.Fatalf("over the wire: %v", err)
	}
	if remote.Schema.String() != local.Schema.String() {
		t.Fatalf("schema mismatch: wire %s, in-process %s", remote.Schema, local.Schema)
	}
	if len(remote.Rows) != len(local.Rows) {
		t.Fatalf("row count mismatch: wire %d, in-process %d", len(remote.Rows), len(local.Rows))
	}
	for i := range local.Rows {
		for j := range local.Rows[i] {
			a, b := local.Rows[i][j], remote.Rows[i][j]
			if a.Type() != b.Type() {
				t.Fatalf("row %d col %d: type %v != %v", i, j, a.Type(), b.Type())
			}
			af, aok := a.Float()
			bf, bok := b.Float()
			if aok != bok || (aok && math.Float64bits(af) != math.Float64bits(bf)) {
				t.Fatalf("row %d col %d: wire %v not bit-identical to in-process %v", i, j, b, a)
			}
			if a.Str() != b.Str() {
				t.Fatalf("row %d col %d: %q != %q", i, j, b.Str(), a.Str())
			}
		}
	}
}

func TestSysSessionsVisible(t *testing.T) {
	_, srv := startServer(t, server.Config{})
	p := openPool(t, srv.Addr(), "watcher", 1)

	rows, err := p.Query(context.Background(), "SELECT id, user_name, remote_addr, current_sql FROM sys.sessions ORDER BY id")
	if err != nil {
		t.Fatalf("sys.sessions: %v", err)
	}
	if len(rows.Rows) != 1 {
		t.Fatalf("%d sessions visible, want 1", len(rows.Rows))
	}
	r := rows.Rows[0]
	if r[1].Str() != "watcher" {
		t.Fatalf("user_name = %q, want watcher", r[1].Str())
	}
	if !strings.HasPrefix(r[2].Str(), "127.0.0.1:") {
		t.Fatalf("remote_addr = %q", r[2].Str())
	}
	// The session observes its own in-flight statement.
	if !strings.Contains(r[3].Str(), "sys.sessions") {
		t.Fatalf("current_sql = %q, want the sys.sessions query itself", r[3].Str())
	}
}

// registerBlocker installs a scalar UDF that parks every call until
// release is closed, for admission and cancellation tests.
func registerBlocker(t *testing.T, eng *db.DB) (entered *atomic.Int64, release chan struct{}) {
	t.Helper()
	entered = new(atomic.Int64)
	release = make(chan struct{})
	err := eng.Scalars().Register(expr.FuncDef{
		Name: "block1", MinArgs: 1, MaxArgs: 1, UDF: true,
		Fn: func(args []sqltypes.Value) (sqltypes.Value, error) {
			entered.Add(1)
			<-release
			return args[0], nil
		},
	})
	if err != nil {
		t.Fatalf("register blocker: %v", err)
	}
	return entered, release
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAdmissionOverflow drives the server to its concurrent-statement
// limit and requires the statement after the last slot to fail fast
// with the typed busy error: 50 in flight, the 51st rejected.
func TestAdmissionOverflow(t *testing.T) {
	const limit = 50
	eng, srv := startServer(t, server.Config{MaxStatements: limit, MaxWaiting: -1})
	entered, release := registerBlocker(t, eng)
	if _, err := eng.Exec("CREATE TABLE T (v DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec("INSERT INTO T VALUES (1.0)"); err != nil {
		t.Fatal(err)
	}

	p := openPool(t, srv.Addr(), "load", limit+1)
	var wg sync.WaitGroup
	errs := make(chan error, limit)
	for i := 0; i < limit; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := p.Query(context.Background(), "SELECT block1(v) FROM T")
			errs <- err
		}()
	}
	// All 50 slots are held once every statement has parked in the UDF.
	waitFor(t, "50 statements in flight", func() bool { return entered.Load() == limit })

	start := time.Now()
	_, err := p.Query(context.Background(), "SELECT block1(v) FROM T")
	if !client.IsBusy(err) {
		t.Fatalf("51st statement: got %v, want typed busy error", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("busy rejection took %v; admission control must fail fast", d)
	}

	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("admitted statement failed: %v", err)
		}
	}
}

// TestConcurrentSessions exercises 50 concurrent client sessions doing
// real statements; run under -race this is the serving layer's
// concurrency check.
func TestConcurrentSessions(t *testing.T) {
	eng, srv := startServer(t, server.Config{})
	if _, err := eng.Exec("CREATE TABLE N (i BIGINT, v DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := eng.Exec(fmt.Sprintf("INSERT INTO N VALUES (%d, %d.25)", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	const sessions = 50
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p, err := client.Open(client.Config{Addr: srv.Addr(), User: fmt.Sprintf("u%d", id), PoolSize: 1})
			if err != nil {
				errs <- err
				return
			}
			defer p.Close()
			ctx := context.Background()
			for rep := 0; rep < 3; rep++ {
				rows, err := p.Query(ctx, "SELECT i, v FROM N ORDER BY i")
				if err != nil {
					errs <- fmt.Errorf("session %d: %w", id, err)
					return
				}
				if len(rows.Rows) != 40 {
					errs <- fmt.Errorf("session %d: %d rows", id, len(rows.Rows))
					return
				}
				if _, err := p.Query(ctx, "SELECT id FROM sys.sessions"); err != nil {
					errs <- fmt.Errorf("session %d sys.sessions: %w", id, err)
					return
				}
				if err := p.Ping(ctx); err != nil {
					errs <- fmt.Errorf("session %d ping: %w", id, err)
					return
				}
			}
			errs <- nil
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestCancelOnDisconnect drops a connection mid-statement and requires
// the server to cancel the statement's context: the query ring must
// record the statement as cancelled, not completed.
func TestCancelOnDisconnect(t *testing.T) {
	eng, srv := startServer(t, server.Config{})
	entered, release := registerBlocker(t, eng)
	if _, err := eng.Exec("CREATE TABLE T (v DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if _, err := eng.Exec(fmt.Sprintf("INSERT INTO T VALUES (%d.0)", i)); err != nil {
			t.Fatal(err)
		}
	}

	// Raw connection so we can sever it abruptly mid-statement.
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	wc := wire.NewConn(nc)
	if err := wc.Send(wire.MsgHello, wire.EncodeHello(wire.Hello{Version: wire.ProtocolVersion, User: "dropper"})); err != nil {
		t.Fatal(err)
	}
	if f, err := wc.Recv(); err != nil || f.Type != wire.MsgWelcome {
		t.Fatalf("handshake: %v %v", f, err)
	}
	stmt := "SELECT block1(v) FROM T"
	if err := wc.Send(wire.MsgQuery, wire.EncodeStatement(stmt)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "statement to park in the UDF", func() bool { return entered.Load() >= 1 })
	nc.Close()
	// Give the reader a moment to notice and cancel, then let the
	// parked UDF calls return so the scan hits its next ctx check.
	time.Sleep(20 * time.Millisecond)
	close(release)

	waitFor(t, "cancelled statement in the query ring", func() bool {
		for _, r := range eng.RecentQueries() {
			if r.SQL == stmt && strings.Contains(r.Err, "context canceled") {
				return true
			}
		}
		return false
	})
}

// TestSessionUnwindsOnAbruptDisconnect reproduces the dropped-read-
// error interleaving: a client pipelines a second request behind a
// parked statement and vanishes mid-flight. The reader's terminal
// error is dropped (the frames channel already holds the second
// request), so only the cancelled session context can unwind the
// handler; the session must leave sys.sessions rather than leak its
// goroutine, connection, and registry row until server shutdown.
func TestSessionUnwindsOnAbruptDisconnect(t *testing.T) {
	eng, srv := startServer(t, server.Config{})
	entered, release := registerBlocker(t, eng)
	if _, err := eng.Exec("CREATE TABLE T (v DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec("INSERT INTO T VALUES (1.0)"); err != nil {
		t.Fatal(err)
	}

	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	wc := wire.NewConn(nc)
	if err := wc.Send(wire.MsgHello, wire.EncodeHello(wire.Hello{Version: wire.ProtocolVersion, User: "vanisher"})); err != nil {
		t.Fatal(err)
	}
	if f, err := wc.Recv(); err != nil || f.Type != wire.MsgWelcome {
		t.Fatalf("handshake: %v %v", f, err)
	}
	// The first request parks in the UDF; the second sits buffered in
	// the server's frames channel when the disconnect error arrives.
	if err := wc.Send(wire.MsgQuery, wire.EncodeStatement("SELECT block1(v) FROM T")); err != nil {
		t.Fatal(err)
	}
	if err := wc.Send(wire.MsgQuery, wire.EncodeStatement("SELECT v FROM T")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "statement to park in the UDF", func() bool { return entered.Load() >= 1 })
	nc.Close()
	// Let the reader hit its terminal error (and drop it), then let the
	// parked statement run to its next ctx check.
	time.Sleep(20 * time.Millisecond)
	close(release)

	p := openPool(t, srv.Addr(), "watcher", 1)
	waitFor(t, "the dead session to leave sys.sessions", func() bool {
		rows, err := p.Query(context.Background(), "SELECT user_name FROM sys.sessions")
		if err != nil {
			return false
		}
		for _, r := range rows.Rows {
			if r[0].Str() == "vanisher" {
				return false
			}
		}
		return len(rows.Rows) > 0
	})
}

func TestErrorClassification(t *testing.T) {
	_, srv := startServer(t, server.Config{})
	p := openPool(t, srv.Addr(), "tester", 1)
	ctx := context.Background()

	cases := []struct {
		sql  string
		code string
	}{
		{"SELEC nope", "parse"},
		{"SELECT no_such_col FROM sys.tables", "sema"},
	}
	for _, tc := range cases {
		_, err := p.Query(ctx, tc.sql)
		var we *client.Error
		if !asClientError(err, &we) {
			t.Fatalf("%q: got %v, want typed wire error", tc.sql, err)
		}
		if we.Code != tc.code {
			t.Fatalf("%q: code %q, want %q (%s)", tc.sql, we.Code, tc.code, we.Message)
		}
	}
	// The connection survives server-reported statement errors.
	if err := p.Ping(ctx); err != nil {
		t.Fatalf("ping after errors: %v", err)
	}
}

func asClientError(err error, target **client.Error) bool {
	for err != nil {
		if we, ok := err.(*client.Error); ok {
			*target = we
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestGracefulShutdown(t *testing.T) {
	_, srv := startServer(t, server.Config{})
	p := openPool(t, srv.Addr(), "tester", 1)
	mustExecWire(t, p, "CREATE TABLE G (v DOUBLE)")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The listener is gone: new connections are refused.
	if _, err := net.DialTimeout("tcp", srv.Addr(), time.Second); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}
