package server_test

import (
	"context"
	"net"
	"testing"
	"time"

	statsudf "repro"
	"repro/internal/engine/db"
	"repro/internal/engine/sqltypes"
	"repro/internal/engine/trace"
	"repro/internal/server"
	"repro/internal/server/wire"
)

// startTracedServer fronts an engine that retains every trace, so the
// tests can assert on span trees without sampling nondeterminism.
func startTracedServer(t *testing.T) (*db.DB, *server.Server) {
	t.Helper()
	sd, err := statsudf.Open(statsudf.Options{Partitions: 2, TraceSampleN: 1})
	if err != nil {
		t.Fatalf("open engine: %v", err)
	}
	eng := sd.Engine()
	srv := server.New(eng, server.Config{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatalf("start server: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return eng, srv
}

// TestRemoteQueryTraceEndToEnd is the remote half of the acceptance
// criterion: a client-issued query must produce a sys.traces record
// whose span tree includes the server span and the exec statement span,
// all under the one TraceID the Done frame echoed to the client.
func TestRemoteQueryTraceEndToEnd(t *testing.T) {
	eng, srv := startTracedServer(t)
	p := openPool(t, srv.Addr(), "tracer", 1)
	ctx := context.Background()

	mustExecWire(t, p, "CREATE TABLE T (i BIGINT); INSERT INTO T VALUES (1); INSERT INTO T VALUES (2)")

	// Streamed SELECT (no ORDER BY/LIMIT takes the streaming path).
	res, err := p.Query(ctx, "SELECT i FROM T")
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID == "" {
		t.Fatal("Done frame carried no trace id on a v2 session")
	}
	if _, err := trace.ParseTraceID(res.TraceID); err != nil {
		t.Fatalf("trace id %q does not parse: %v", res.TraceID, err)
	}

	assertServerSpanTree(t, eng, res.TraceID)

	// Materialized path (script Exec) also links its trace.
	res2, err := p.Exec(ctx, "INSERT INTO T VALUES (9)")
	if err != nil {
		t.Fatal(err)
	}
	if res2.TraceID == "" || res2.TraceID == res.TraceID {
		t.Fatalf("exec trace id = %q (query was %q), want a fresh id", res2.TraceID, res.TraceID)
	}
	assertServerSpanTree(t, eng, res2.TraceID)

	// Prepared path: EXECUTE frames carry the trace header too.
	st := p.Prepare("SELECT i FROM T WHERE i = ?")
	res3, err := st.Query(ctx, sqltypes.NewBigInt(1))
	if err != nil {
		t.Fatal(err)
	}
	if res3.TraceID == "" {
		t.Fatal("prepared execution carried no trace id")
	}
	assertServerSpanTree(t, eng, res3.TraceID)
}

// assertServerSpanTree requires the retained trace to hold a server
// span parented at the client's roundtrip span, with the exec statement
// span nested under the server span.
func assertServerSpanTree(t *testing.T, eng *db.DB, tid string) {
	t.Helper()
	rec, ok := eng.Traces().Get(tid)
	if !ok {
		t.Fatalf("trace %s not retained server-side", tid)
	}
	var serverSpan, stmtParent, serverParent string
	for _, sp := range rec.Spans {
		switch sp.Name {
		case "server":
			serverSpan, serverParent = sp.SpanID, sp.ParentID
		case "statement":
			stmtParent = sp.ParentID
		}
	}
	if serverSpan == "" {
		t.Fatalf("trace %s has no server span: %+v", tid, rec.Spans)
	}
	if stmtParent != serverSpan {
		t.Errorf("statement span parent = %q, want server span %q", stmtParent, serverSpan)
	}
	if serverParent == "" {
		t.Error("server span has no parent: the client's roundtrip span id was not adopted")
	}
	if rec.SessionID == 0 {
		t.Error("trace carries no session id")
	}
}

// TestOldClientNewServer speaks raw protocol 1 at a v2 server: the
// handshake must negotiate down and every response frame must be exact
// v1 — no trailing proto in Welcome, no trace id in Done.
func TestOldClientNewServer(t *testing.T) {
	eng, srv := startTracedServer(t)
	if _, err := eng.Exec("CREATE TABLE T (i BIGINT)"); err != nil {
		t.Fatal(err)
	}

	nc, err := net.DialTimeout("tcp", srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(10 * time.Second))
	wc := wire.NewConn(nc)

	if err := wc.Send(wire.MsgHello, wire.EncodeHello(wire.Hello{Version: wire.ProtocolV1, User: "legacy"})); err != nil {
		t.Fatal(err)
	}
	f, err := wc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.MsgWelcome {
		t.Fatalf("v1 hello got frame type %#x, want Welcome", f.Type)
	}
	w, err := wire.DecodeWelcome(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if w.Proto != wire.ProtocolV1 {
		t.Fatalf("negotiated proto %d for a v1 client, want 1", w.Proto)
	}

	// A v1 statement (no trace header) must run, and the Done frame must
	// be byte-exact v1: the lenient decoder sees no trace id.
	if err := wc.Send(wire.MsgQuery, wire.EncodeStatement("SELECT count(*) FROM T")); err != nil {
		t.Fatal(err)
	}
	for {
		f, err := wc.Recv()
		if err != nil {
			t.Fatal(err)
		}
		switch f.Type {
		case wire.MsgSchema, wire.MsgBatch:
			continue
		case wire.MsgDone:
			d, err := wire.DecodeDone(f.Payload)
			if err != nil {
				t.Fatal(err)
			}
			if d.TraceID != "" {
				t.Fatalf("v1 Done frame carried trace id %q", d.TraceID)
			}
			// The statement is still traced server-side: a fresh TraceID
			// with the server span, just not echoed to the old client.
			found := false
			for _, rec := range eng.Traces().Snapshot() {
				if rec.SQL == "SELECT count(*) FROM T" {
					found = true
				}
			}
			if !found {
				t.Error("v1 client statement missing from the trace store")
			}
			return
		case wire.MsgError:
			we, _ := wire.DecodeError(f.Payload)
			t.Fatalf("statement failed: %v", we)
		default:
			t.Fatalf("unexpected frame type %#x", f.Type)
		}
	}
}
