// Package server is the engine's network serving layer: a TCP server
// speaking the wire protocol in internal/server/wire, fronting an
// embedded db.DB the way the paper's Teradata instance fronts its
// clients — queries and small result sets cross the network, the heavy
// scans never leave the server.
//
// Each connection is one session: a handshake (Hello/Welcome), then a
// strict request/response loop of statements. The server enforces
// per-connection read/write deadlines and an idle timeout, cancels a
// session's in-flight statement the moment its connection drops (the
// context is threaded into the cancellation-aware executor), and
// applies admission control — a configurable bound on concurrent
// statements with a bounded wait queue, beyond which statements fail
// fast with the typed "server busy" error.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine/db"
	"repro/internal/engine/exec"
	"repro/internal/engine/sema"
	"repro/internal/engine/sqlparser"
	"repro/internal/engine/sqltypes"
	"repro/internal/engine/trace"
	"repro/internal/server/wire"
)

// Defaults for Config's zero values.
const (
	defaultMaxStatements    = 64
	defaultIdleTimeout      = 5 * time.Minute
	defaultWriteTimeout     = 30 * time.Second
	defaultHandshakeTimeout = 10 * time.Second
	defaultBatchRows        = 256
)

// Version is the server banner sent in the Welcome frame.
const Version = "twmd/1 (statsudf engine)"

// Engine is the statement surface the server fronts. The embedded
// *db.DB satisfies it directly; the cluster coordinator implements it
// over a shard fleet, which is how one twmd binary serves both roles
// with the same session, admission and tracing machinery.
type Engine interface {
	// RegisterSysTable installs an instance-specific sys.* virtual
	// table (the server registers sys.sessions at Start).
	RegisterSysTable(name string, fn db.SysTableFunc) error
	// ExecScriptContext runs a semicolon-separated script.
	ExecScriptContext(ctx context.Context, sql string) (*exec.Result, error)
	// RunContext runs one parsed statement.
	RunContext(ctx context.Context, stmt sqlparser.Statement) (*exec.Result, error)
	// QueryStreamContext streams a SELECT's rows through sink.
	QueryStreamContext(ctx context.Context, sql string, sink exec.RowSink) (*sqltypes.Schema, *exec.Stats, error)
	// PrepareContext plans one statement for repeated execution. An
	// engine that cannot prepare (the coordinator) returns a typed
	// *wire.Error; pooled clients fall back to plain queries.
	PrepareContext(ctx context.Context, sql string) (*db.Prepared, error)
	// SummaryNLQ serves the n/L/Q summary read path (cache-first) for
	// the protocol-3 push-down Summary frame.
	SummaryNLQ(ctx context.Context, table string, cols []string, mt core.MatrixType) (*core.NLQ, bool, error)
	// Traces is the trace store session/server spans attach to.
	Traces() *trace.Store
}

// Config tunes a Server.
type Config struct {
	// Addr is the TCP listen address (e.g. ":7443", "127.0.0.1:0").
	Addr string
	// MaxStatements bounds concurrently executing statements across
	// all sessions. Default 64.
	MaxStatements int
	// MaxWaiting bounds the admission wait queue; statements beyond
	// MaxStatements+MaxWaiting fail fast with the typed busy error.
	// Negative means no queue (fail fast at MaxStatements); zero
	// selects MaxStatements (a queue as deep as the execution limit).
	MaxWaiting int
	// IdleTimeout closes connections with no statement and no traffic
	// for this long. Default 5m.
	IdleTimeout time.Duration
	// WriteTimeout is the per-frame write deadline. Default 30s.
	WriteTimeout time.Duration
	// HandshakeTimeout bounds the Hello/Welcome exchange. Default 10s.
	HandshakeTimeout time.Duration
	// BatchRows is the number of result rows per wire batch. Default 256.
	BatchRows int
}

func (c Config) withDefaults() Config {
	if c.MaxStatements <= 0 {
		c.MaxStatements = defaultMaxStatements
	}
	switch {
	case c.MaxWaiting < 0:
		c.MaxWaiting = 0
	case c.MaxWaiting == 0:
		c.MaxWaiting = c.MaxStatements
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = defaultIdleTimeout
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = defaultWriteTimeout
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = defaultHandshakeTimeout
	}
	if c.BatchRows <= 0 {
		c.BatchRows = defaultBatchRows
	}
	return c
}

// Server is a wire-protocol front end over one engine (an embedded
// database or a cluster coordinator).
type Server struct {
	db  Engine
	cfg Config

	adm      *admission
	sessions *sessionRegistry

	baseCtx context.Context
	cancel  context.CancelFunc

	ln       net.Listener
	wg       sync.WaitGroup
	draining atomic.Bool

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// New builds a server over d. Call Start to begin listening.
func New(d Engine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		db:       d,
		cfg:      cfg,
		adm:      newAdmission(cfg.MaxStatements, cfg.MaxWaiting),
		sessions: newSessionRegistry(),
		baseCtx:  ctx,
		cancel:   cancel,
		conns:    make(map[net.Conn]struct{}),
	}
}

// Start binds the listen address, registers the sys.sessions virtual
// table on the fronted database, and begins accepting connections in
// the background. The bound address is available from Addr (useful
// with ":0").
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	if err := s.db.RegisterSysTable("sys.sessions", s.sessions.sysSessions); err != nil {
		ln.Close()
		return err
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			// Listener closed (shutdown) or fatal accept error.
			return
		}
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[nc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(nc)
	}
}

// Shutdown drains the server: it stops accepting connections, cancels
// every in-flight statement through its context, and waits for the
// session handlers to unwind (or for ctx to expire, at which point
// remaining connections are force-closed).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.ln != nil {
		s.ln.Close()
	}
	s.cancel() // cancels every session's statement context
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.closeConns()
		<-done
		return ctx.Err()
	}
}

// Close stops the server immediately: no draining, connections are
// force-closed.
func (s *Server) Close() error {
	s.draining.Store(true)
	if s.ln != nil {
		s.ln.Close()
	}
	s.cancel()
	s.closeConns()
	s.wg.Wait()
	return nil
}

func (s *Server) closeConns() {
	s.mu.Lock()
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
}

// incoming is one frame (or terminal read error) from the reader
// goroutine.
type incoming struct {
	f   wire.Frame
	err error
}

// idleClock manages a connection's idle read deadline across the two
// goroutines that share it: the reader arms the clock while waiting for
// a frame and suspends it the moment one arrives; the handler restarts
// it when the frame has been handled. The count (rather than a bool)
// makes the handoff safe against a pipelining client: a frame read
// ahead while the previous statement still executes keeps the clock
// suspended until the handler has caught up.
type idleClock struct {
	mu       sync.Mutex
	nc       net.Conn
	timeout  time.Duration
	inflight int // frames delivered to the handler but not yet handled
}

func newIdleClock(nc net.Conn, timeout time.Duration) *idleClock {
	c := &idleClock{nc: nc, timeout: timeout}
	nc.SetReadDeadline(time.Now().Add(timeout))
	return c
}

// begin (reader side) marks a frame in flight and suspends the clock.
func (c *idleClock) begin() {
	c.mu.Lock()
	c.inflight++
	c.nc.SetReadDeadline(time.Time{})
	c.mu.Unlock()
}

// end (handler side) marks a frame handled; once nothing is in flight
// the clock restarts.
func (c *idleClock) end() {
	c.mu.Lock()
	c.inflight--
	if c.inflight == 0 {
		c.nc.SetReadDeadline(time.Now().Add(c.timeout))
	}
	c.mu.Unlock()
}

// staleTimeout reports whether a read timeout came from a deadline made
// stale by an in-flight frame. It clears the stale deadline under the
// lock so the reader blocks cleanly instead of spinning on instant
// timeouts until the statement completes.
func (c *idleClock) staleTimeout() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.inflight == 0 {
		return false
	}
	c.nc.SetReadDeadline(time.Time{})
	return true
}

// errCloseSession signals a clean client-requested close.
var errCloseSession = errors.New("server: session closed")

// handleConn runs one session: handshake, then the request loop.
func (s *Server) handleConn(nc net.Conn) {
	defer s.wg.Done()
	defer func() {
		nc.Close()
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
	}()
	connections.Inc()
	sessionsActive.Inc()
	defer sessionsActive.Dec()

	wc := wire.NewConn(nc)
	defer func() {
		// Account any bytes not yet flushed by a statement
		// (handshake, pings, the final close exchange).
		bytesSent.Add(wc.BytesWritten.Swap(0))
		bytesReceived.Add(wc.BytesRead.Swap(0))
	}()

	sess, err := s.handshake(nc, wc)
	if err != nil {
		return
	}
	defer s.sessions.remove(sess.id)
	defer sess.preps.closeAll()

	// The session context: cancelled when the server shuts down or —
	// via the reader goroutine — the moment the connection drops, so a
	// disconnect stops the session's in-flight partition scans.
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	ctx = db.WithSession(ctx, db.Session{ID: sess.id, User: sess.user, RemoteAddr: sess.remoteAddr})

	clock := newIdleClock(nc, s.cfg.IdleTimeout)
	frames := make(chan incoming, 1)
	go s.readLoop(ctx, wc, frames, cancel, clock)

	for {
		select {
		case in := <-frames:
			if in.err != nil {
				return // disconnect, idle timeout or unreadable frame
			}
			err := s.dispatch(ctx, nc, wc, sess, in.f)
			clock.end()
			if err != nil {
				return
			}
		case <-ctx.Done():
			// Server shutdown, or the reader cancelled on disconnect.
			// Selecting on the session ctx (not just frames) means a
			// reader whose terminal error was dropped — because a frame
			// was already buffered — still unwinds the session.
			if s.baseCtx.Err() != nil {
				s.sendError(nc, wc, &wire.Error{Code: wire.CodeShutdown, Message: "server shutting down"})
			}
			return
		}
	}
}

// readLoop is the connection's only reader. It reads ahead while a
// statement executes purely to detect disconnects: a read error while
// a frame is in flight cancels the session context, which stops the
// executor's partition scans. Read deadlines double as the idle
// timeout, suspended by the idleClock while frames are in flight so a
// slow query with a silently waiting client is not mistaken for an
// idle session.
func (s *Server) readLoop(ctx context.Context, wc *wire.Conn, frames chan<- incoming, cancel context.CancelFunc, clock *idleClock) {
	for {
		f, err := wc.Recv()
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && clock.staleTimeout() {
				// Idle deadline fired just as a statement began; the
				// clock cleared it — keep reading.
				continue
			}
			cancel()
			// Best-effort delivery: the handler may be mid-statement
			// with a frame already buffered, so never block here — the
			// cancelled ctx unwinds the handler regardless.
			select {
			case frames <- incoming{err: err}:
			default:
			}
			return
		}
		clock.begin()
		select {
		case frames <- incoming{f: f}:
		case <-ctx.Done():
			return // handler unwinding; don't block on a dead channel
		}
	}
}

// handshake performs the Hello/Welcome exchange under its own deadline
// and registers the session.
func (s *Server) handshake(nc net.Conn, wc *wire.Conn) (*session, error) {
	nc.SetReadDeadline(time.Now().Add(s.cfg.HandshakeTimeout))
	f, err := wc.Recv()
	if err != nil {
		return nil, err
	}
	if f.Type != wire.MsgHello {
		s.sendError(nc, wc, &wire.Error{Code: wire.CodeProtocol, Message: fmt.Sprintf("expected Hello, got frame type %#x", f.Type)})
		return nil, errors.New("server: no hello")
	}
	hello, err := wire.DecodeHello(f.Payload)
	if err != nil {
		s.sendError(nc, wc, &wire.Error{Code: wire.CodeProtocol, Message: err.Error()})
		return nil, err
	}
	if hello.Version < wire.MinProtocolVersion || hello.Version > wire.ProtocolVersion {
		err := &wire.Error{Code: wire.CodeProtocol, Message: fmt.Sprintf("protocol version %d not supported (server speaks %d through %d)", hello.Version, wire.MinProtocolVersion, wire.ProtocolVersion)}
		s.sendError(nc, wc, err)
		return nil, err
	}
	sess := s.sessions.add(hello.User, nc.RemoteAddr().String())
	// The session speaks the client's offered version: a v1 client gets
	// exact v1 frames (its strict decoder rejects trailing bytes), a v2
	// client gets trace headers and Done trace IDs.
	sess.proto = hello.Version
	if err := s.send(nc, wc, wire.MsgWelcome, wire.EncodeWelcome(wire.Welcome{SessionID: sess.id, Server: Version, Proto: sess.proto})); err != nil {
		s.sessions.remove(sess.id)
		return nil, err
	}
	return sess, nil
}

// beginStmtTrace establishes the statement's trace position: it adopts
// the client's TraceID off the wire header (or starts a fresh trace for
// v1 clients and header-less frames), wraps ctx so the engine's
// statement span parents at a new server span, and returns a finish
// func that attaches that server span — parented at the client's
// roundtrip span when one was sent — to the trace store. Attach is a
// no-op when tail sampling dropped the trace.
func (s *Server) beginStmtTrace(ctx context.Context, sess *session, th *wire.TraceHeader) (context.Context, string, func()) {
	var tid trace.TraceID
	var parent trace.SpanID
	if th != nil {
		tid, parent = th.TraceID, th.SpanID
	}
	if tid.IsZero() {
		tid = trace.NewTraceID()
	}
	serverSpan := trace.NewSpanID()
	ctx = trace.NewContext(ctx, trace.SpanContext{TraceID: tid, SpanID: serverSpan})
	start := time.Now()
	finish := func() {
		rec := trace.SpanRecord{
			SpanID:   serverSpan.String(),
			Name:     "server",
			Start:    start,
			Duration: time.Since(start),
		}
		if !parent.IsZero() {
			rec.ParentID = parent.String()
		}
		s.db.Traces().Attach(tid.String(), sess.id, rec)
	}
	return ctx, tid.String(), finish
}

// dispatch handles one request frame. A non-nil return ends the
// session.
func (s *Server) dispatch(ctx context.Context, nc net.Conn, wc *wire.Conn, sess *session, f wire.Frame) error {
	switch f.Type {
	case wire.MsgPing:
		return s.send(nc, wc, wire.MsgPong, nil)
	case wire.MsgClose:
		s.send(nc, wc, wire.MsgGoodbye, nil)
		return errCloseSession
	case wire.MsgQuery, wire.MsgExec:
		sql, th, err := wire.DecodeStatementTrace(f.Payload)
		if err != nil {
			s.sendError(nc, wc, &wire.Error{Code: wire.CodeProtocol, Message: err.Error()})
			return err
		}
		return s.runStatement(ctx, nc, wc, sess, sql, f.Type == wire.MsgExec, th)
	case wire.MsgPrepare:
		return s.handlePrepare(ctx, nc, wc, sess, f.Payload)
	case wire.MsgExecPrepared:
		return s.handleExecPrepared(ctx, nc, wc, sess, f.Payload)
	case wire.MsgClosePrepared:
		return s.handleClosePrepared(nc, wc, sess, f.Payload)
	case wire.MsgSummary:
		return s.handleSummary(ctx, nc, wc, sess, f.Payload)
	default:
		err := &wire.Error{Code: wire.CodeProtocol, Message: fmt.Sprintf("unexpected frame type %#x", f.Type)}
		s.sendError(nc, wc, err)
		return err
	}
}

// runStatement executes one statement under admission control and
// streams its result. Execution errors go back to the client as typed
// error frames and return nil; a non-nil return is a wire write
// failure, which ends the session immediately — a dead client's reads
// may never error (see readLoop), so the writer cannot rely on the
// reader to notice.
func (s *Server) runStatement(ctx context.Context, nc net.Conn, wc *wire.Conn, sess *session, sql string, script bool, th *wire.TraceHeader) error {
	start := time.Now()
	defer func() {
		statementSeconds.Observe(time.Since(start).Seconds())
		bytesSent.Add(wc.BytesWritten.Swap(0))
		bytesReceived.Add(wc.BytesRead.Swap(0))
	}()

	if s.draining.Load() {
		return s.sendError(nc, wc, &wire.Error{Code: wire.CodeShutdown, Message: "server shutting down"})
	}
	if err := s.adm.acquire(ctx); err != nil {
		return s.sendError(nc, wc, classify(err))
	}
	defer s.adm.release()
	statementsInflight.Inc()
	defer statementsInflight.Dec()
	sess.begin(sql)
	defer sess.end()

	ctx, tid, finish := s.beginStmtTrace(ctx, sess, th)
	defer finish()

	if script {
		res, err := s.db.ExecScriptContext(ctx, sql)
		if err != nil {
			return s.sendError(nc, wc, classify(err))
		}
		return s.sendResult(nc, wc, sess, tid, res)
	}

	// Single statement: SELECTs without ORDER BY/LIMIT stream straight
	// from the partition scans to the wire; everything else (DDL,
	// INSERT, ordered SELECTs) executes materialized.
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return s.sendError(nc, wc, classify(err))
	}
	if sel, ok := stmt.(*sqlparser.Select); ok && len(sel.OrderBy) == 0 && sel.Limit == nil {
		return s.streamQuery(ctx, nc, wc, sess, tid, sql)
	}
	res, err := s.db.RunContext(ctx, stmt)
	if err != nil {
		return s.sendError(nc, wc, classify(err))
	}
	return s.sendResult(nc, wc, sess, tid, res)
}

// streamQuery runs a streamable SELECT, flushing result batches as
// they fill. The schema frame follows the batches — the streaming
// executor (like the in-process QueryStream) reports the schema when
// the scan completes, and batches are self-describing. A non-nil
// return is a wire write failure that ends the session.
func (s *Server) streamQuery(ctx context.Context, nc net.Conn, wc *wire.Conn, sess *session, tid string, sql string) error {
	var (
		mu    sync.Mutex
		batch []sqltypes.Row
		sent  int64
		werr  error // first wire write error; stops the sink
	)
	flushLocked := func() error {
		if len(batch) == 0 {
			return nil
		}
		p, err := wire.EncodeBatch(batch)
		if err != nil {
			return err
		}
		batch = batch[:0]
		return s.send(nc, wc, wire.MsgBatch, p)
	}
	sink := func(r sqltypes.Row) error {
		mu.Lock()
		defer mu.Unlock()
		if werr != nil {
			return werr
		}
		batch = append(batch, r.Clone())
		sent++
		if len(batch) >= s.cfg.BatchRows {
			if werr = flushLocked(); werr != nil {
				return werr
			}
		}
		return nil
	}
	schema, stats, err := s.db.QueryStreamContext(ctx, sql, sink)
	if err != nil {
		if werr != nil {
			return werr // connection is gone; nothing to report to
		}
		return s.sendError(nc, wc, classify(err))
	}
	mu.Lock()
	err = flushLocked()
	rows := sent
	mu.Unlock()
	if err != nil {
		return err
	}
	if err := s.send(nc, wc, wire.MsgSchema, wire.EncodeSchema(schema)); err != nil {
		return err
	}
	return s.send(nc, wc, wire.MsgDone, wire.EncodeDone(wire.Done{Rows: rows, StatsJSON: statsJSON(stats), TraceID: tid}, sess.proto))
}

// sendResult streams a materialized result: Schema (when the statement
// produced one), row batches, Done. A non-nil return is a wire write
// failure that ends the session.
func (s *Server) sendResult(nc net.Conn, wc *wire.Conn, sess *session, tid string, res *exec.Result) error {
	if res.Schema != nil {
		if err := s.send(nc, wc, wire.MsgSchema, wire.EncodeSchema(res.Schema)); err != nil {
			return err
		}
	}
	for off := 0; off < len(res.Rows); off += s.cfg.BatchRows {
		end := off + s.cfg.BatchRows
		if end > len(res.Rows) {
			end = len(res.Rows)
		}
		p, err := wire.EncodeBatch(res.Rows[off:end])
		if err != nil {
			return s.sendError(nc, wc, classify(err))
		}
		if err := s.send(nc, wc, wire.MsgBatch, p); err != nil {
			return err
		}
	}
	return s.send(nc, wc, wire.MsgDone, wire.EncodeDone(wire.Done{
		Affected:  res.Affected,
		Rows:      int64(len(res.Rows)),
		StatsJSON: statsJSON(res.Stats),
		TraceID:   tid,
	}, sess.proto))
}

// handleSummary serves the protocol-3 push-down summary request: the
// engine's cache-first n/L/Q read path over the wire. This is what a
// coordinator sends each shard for a model build — the shard does its
// one local scan (or a zero-scan cache hit) and ships back a packed
// partial the size of a d×d matrix, never the rows.
func (s *Server) handleSummary(ctx context.Context, nc net.Conn, wc *wire.Conn, sess *session, payload []byte) error {
	if sess.proto < wire.ProtocolV3 {
		err := &wire.Error{Code: wire.CodeProtocol, Message: fmt.Sprintf("Summary frames need protocol >= %d (session negotiated %d)", wire.ProtocolV3, sess.proto)}
		s.sendError(nc, wc, err)
		return err
	}
	req, err := wire.DecodeSummary(payload)
	if err != nil {
		s.sendError(nc, wc, &wire.Error{Code: wire.CodeProtocol, Message: err.Error()})
		return err
	}
	mt := core.MatrixType(req.Matrix)
	if mt != core.Diagonal && mt != core.Triangular && mt != core.Full {
		s.sendError(nc, wc, &wire.Error{Code: wire.CodeProtocol, Message: fmt.Sprintf("bad matrix type %d", req.Matrix)})
		return nil
	}
	if s.draining.Load() {
		return s.sendError(nc, wc, &wire.Error{Code: wire.CodeShutdown, Message: "server shutting down"})
	}
	if err := s.adm.acquire(ctx); err != nil {
		return s.sendError(nc, wc, classify(err))
	}
	defer s.adm.release()
	statementsInflight.Inc()
	defer statementsInflight.Dec()
	sess.begin("SUMMARY " + req.Table)
	defer sess.end()

	nlq, hit, err := s.db.SummaryNLQ(ctx, req.Table, req.Columns, mt)
	if err != nil {
		return s.sendError(nc, wc, classify(err))
	}
	res := wire.SummaryResult{Hit: hit}
	if nlq != nil && nlq.N > 0 {
		res.Packed = nlq.Pack()
	}
	return s.send(nc, wc, wire.MsgSummaryResult, wire.EncodeSummaryResult(res))
}

// send writes one frame under the configured write deadline.
func (s *Server) send(nc net.Conn, wc *wire.Conn, typ byte, payload []byte) error {
	nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	return wc.Send(typ, payload)
}

// sendError reports a statement failure to the client; its non-nil
// return is a wire write failure, not the statement error.
func (s *Server) sendError(nc net.Conn, wc *wire.Conn, e *wire.Error) error {
	return s.send(nc, wc, wire.MsgError, wire.EncodeError(e))
}

// statsJSON marshals executor stats for the Done frame ("" when the
// statement did not scan).
func statsJSON(st *exec.Stats) string {
	if st == nil {
		return ""
	}
	b, err := json.Marshal(st)
	if err != nil {
		return ""
	}
	return string(b)
}

// classify maps an execution error to its typed wire error, so the
// client sees what kind of failure happened (and the full positioned
// sema diagnostics when analysis rejected the statement).
func classify(err error) *wire.Error {
	var we *wire.Error
	if errors.As(err, &we) {
		return we
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &wire.Error{Code: wire.CodeCancelled, Message: err.Error()}
	}
	if errors.Is(err, db.ErrPlanStale) {
		return &wire.Error{Code: wire.CodeStalePlan, Message: err.Error()}
	}
	var list sema.ErrorList
	var diag sema.Diagnostic
	if errors.As(err, &list) || errors.As(err, &diag) {
		// The code is already the "sema" prefix; don't render it twice.
		return &wire.Error{Code: wire.CodeSema, Message: strings.TrimPrefix(err.Error(), "sema: ")}
	}
	if strings.HasPrefix(err.Error(), "sqlparser:") {
		return &wire.Error{Code: wire.CodeParse, Message: err.Error()}
	}
	return &wire.Error{Code: wire.CodeInternal, Message: err.Error()}
}
