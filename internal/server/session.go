package server

import (
	"sync"
	"time"

	"repro/internal/engine/sqltypes"
)

// session is one connected client's registry entry: who they are,
// when they connected, and what they are running right now. The
// sys.sessions virtual table and the query ring's session columns are
// views over these.
type session struct {
	id         int64
	user       string
	remoteAddr string
	started    time.Time
	// proto is the handshake-negotiated protocol version; trace
	// headers and Done trace IDs flow only on proto >= 2 sessions.
	// Written once during the handshake, before any statement runs.
	proto uint32

	mu         sync.Mutex
	statements int64     // statements completed
	currentSQL string    // statement executing now ("" when idle)
	stmtStart  time.Time // when currentSQL began

	// preps holds the session's prepared-statement handles; closed as a
	// set when the connection ends.
	preps preparedSet
}

// begin marks a statement as executing.
func (s *session) begin(sql string) {
	s.mu.Lock()
	s.currentSQL = sql
	s.stmtStart = time.Now()
	s.mu.Unlock()
}

// end marks the session idle again.
func (s *session) end() {
	s.mu.Lock()
	s.currentSQL = ""
	s.statements++
	s.mu.Unlock()
}

// sessionRegistry tracks the open sessions. Registration happens once
// per connection; sys.sessions scans snapshot under the same lock.
type sessionRegistry struct {
	mu   sync.Mutex
	next int64
	m    map[int64]*session
}

func newSessionRegistry() *sessionRegistry {
	return &sessionRegistry{m: make(map[int64]*session)}
}

func (r *sessionRegistry) add(user, remoteAddr string) *session {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next++
	s := &session{id: r.next, user: user, remoteAddr: remoteAddr, started: time.Now()}
	r.m[s.id] = s
	return s
}

func (r *sessionRegistry) remove(id int64) {
	r.mu.Lock()
	delete(r.m, id)
	r.mu.Unlock()
}

func (r *sessionRegistry) snapshot() []*session {
	r.mu.Lock()
	out := make([]*session, 0, len(r.m))
	for _, s := range r.m {
		out = append(out, s)
	}
	r.mu.Unlock()
	return out
}

// sysSessions materializes the sys.sessions virtual table: one row per
// open session, including the statement each is executing right now.
// Registered on the fronted DB by Server.Start, so remote clients can
// `SELECT * FROM sys.sessions` like any other table.
func (r *sessionRegistry) sysSessions() ([]sqltypes.Column, []sqltypes.Row, error) {
	cols := []sqltypes.Column{
		{Name: "id", Type: sqltypes.TypeBigInt},
		{Name: "user_name", Type: sqltypes.TypeVarChar},
		{Name: "remote_addr", Type: sqltypes.TypeVarChar},
		{Name: "started", Type: sqltypes.TypeVarChar},
		{Name: "statements", Type: sqltypes.TypeBigInt},
		{Name: "current_sql", Type: sqltypes.TypeVarChar},
		{Name: "statement_ms", Type: sqltypes.TypeDouble},
		{Name: "proto", Type: sqltypes.TypeBigInt},
	}
	sessions := r.snapshot()
	rows := make([]sqltypes.Row, 0, len(sessions))
	for _, s := range sessions {
		s.mu.Lock()
		statements, current, stmtStart := s.statements, s.currentSQL, s.stmtStart
		s.mu.Unlock()
		var runningMS float64
		if current != "" {
			runningMS = float64(time.Since(stmtStart)) / float64(time.Millisecond)
		}
		rows = append(rows, sqltypes.Row{
			sqltypes.NewBigInt(s.id),
			sqltypes.NewVarChar(s.user),
			sqltypes.NewVarChar(s.remoteAddr),
			sqltypes.NewVarChar(s.started.Format(time.RFC3339Nano)),
			sqltypes.NewBigInt(statements),
			sqltypes.NewVarChar(current),
			sqltypes.NewDouble(runningMS),
			sqltypes.NewBigInt(int64(s.proto)),
		})
	}
	return cols, rows, nil
}
