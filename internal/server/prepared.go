package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/engine/db"
	"repro/internal/engine/sqltypes"
	"repro/internal/server/wire"
)

// maxPreparedPerSession bounds one session's live prepared handles; a
// client that leaks handles gets a typed error instead of growing the
// server without bound.
const maxPreparedPerSession = 64

// preparedSet is one session's prepared-statement registry. Handles
// are session-scoped: they mean nothing on any other connection, and
// the whole set is closed when the session ends.
type preparedSet struct {
	mu   sync.Mutex
	next int64
	m    map[int64]*db.Prepared
}

// put registers p under a fresh handle.
func (ps *preparedSet) put(p *db.Prepared) (int64, error) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.m == nil {
		ps.m = make(map[int64]*db.Prepared)
	}
	if len(ps.m) >= maxPreparedPerSession {
		return 0, fmt.Errorf("server: session holds %d prepared statements (limit); close some first", len(ps.m))
	}
	ps.next++
	ps.m[ps.next] = p
	return ps.next, nil
}

// get resolves a handle (nil when unknown or already closed).
func (ps *preparedSet) get(h int64) *db.Prepared {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.m[h]
}

// replace swaps the plan behind an existing handle (the server-side
// re-prepare after DDL staled the old plan). The displaced plan is
// returned for closing outside the lock.
func (ps *preparedSet) replace(h int64, p *db.Prepared) *db.Prepared {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	old := ps.m[h]
	if old == nil {
		return p // handle was closed concurrently; caller closes the new plan
	}
	ps.m[h] = p
	return old
}

// take removes and returns a handle's plan (nil when unknown).
func (ps *preparedSet) take(h int64) *db.Prepared {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	p := ps.m[h]
	delete(ps.m, h)
	return p
}

// closeAll releases every plan; called when the session ends.
func (ps *preparedSet) closeAll() {
	ps.mu.Lock()
	m := ps.m
	ps.m = nil
	ps.mu.Unlock()
	for _, p := range m {
		p.Close()
	}
}

// handlePrepare plans one statement and returns its handle. Prepares
// skip admission control — they never scan — but respect draining.
func (s *Server) handlePrepare(ctx context.Context, nc net.Conn, wc *wire.Conn, sess *session, payload []byte) error {
	sql, err := wire.DecodePrepare(payload)
	if err != nil {
		s.sendError(nc, wc, &wire.Error{Code: wire.CodeProtocol, Message: err.Error()})
		return err
	}
	if s.draining.Load() {
		return s.sendError(nc, wc, &wire.Error{Code: wire.CodeShutdown, Message: "server shutting down"})
	}
	p, err := s.db.PrepareContext(ctx, sql)
	if err != nil {
		return s.sendError(nc, wc, classify(err))
	}
	h, err := sess.preps.put(p)
	if err != nil {
		p.Close()
		return s.sendError(nc, wc, &wire.Error{Code: wire.CodeInternal, Message: err.Error()})
	}
	return s.send(nc, wc, wire.MsgPrepared, wire.EncodePrepared(wire.PreparedInfo{Handle: h, NumParams: p.NumParams()}))
}

// handleClosePrepared releases one handle; closing an unknown handle is
// a no-op (the client may race a session teardown), acknowledged with
// an empty Done either way.
func (s *Server) handleClosePrepared(nc net.Conn, wc *wire.Conn, sess *session, payload []byte) error {
	h, err := wire.DecodeClosePrepared(payload)
	if err != nil {
		s.sendError(nc, wc, &wire.Error{Code: wire.CodeProtocol, Message: err.Error()})
		return err
	}
	if p := sess.preps.take(h); p != nil {
		p.Close()
	}
	return s.send(nc, wc, wire.MsgDone, wire.EncodeDone(wire.Done{}, sess.proto))
}

// handleExecPrepared executes a handle under admission control,
// streaming rows like MsgQuery. A plan staled by DDL is transparently
// re-prepared once from its SQL text; if the fresh plan is immediately
// stale again (DDL churn) the client gets the typed stale_plan error
// and decides.
func (s *Server) handleExecPrepared(ctx context.Context, nc net.Conn, wc *wire.Conn, sess *session, payload []byte) error {
	h, args, th, err := wire.DecodeExecPreparedTrace(payload)
	if err != nil {
		s.sendError(nc, wc, &wire.Error{Code: wire.CodeProtocol, Message: err.Error()})
		return err
	}
	p := sess.preps.get(h)
	if p == nil {
		return s.sendError(nc, wc, &wire.Error{Code: wire.CodeStalePlan, Message: fmt.Sprintf("unknown prepared handle %d (server restarted or handle closed?)", h)})
	}

	start := time.Now()
	defer func() {
		statementSeconds.Observe(time.Since(start).Seconds())
		bytesSent.Add(wc.BytesWritten.Swap(0))
		bytesReceived.Add(wc.BytesRead.Swap(0))
	}()
	if s.draining.Load() {
		return s.sendError(nc, wc, &wire.Error{Code: wire.CodeShutdown, Message: "server shutting down"})
	}
	if err := s.adm.acquire(ctx); err != nil {
		return s.sendError(nc, wc, classify(err))
	}
	defer s.adm.release()
	statementsInflight.Inc()
	defer statementsInflight.Dec()
	sess.begin(p.SQL())
	defer sess.end()

	ctx, tid, finish := s.beginStmtTrace(ctx, sess, th)
	defer finish()

	werr, err := s.runPrepared(ctx, nc, wc, sess, tid, p, args)
	if errors.Is(err, db.ErrPlanStale) && werr == nil {
		// The epoch check fires before any row is produced, so nothing
		// has been sent yet: safe to re-prepare from the SQL and retry.
		np, perr := s.db.PrepareContext(ctx, p.SQL())
		if perr != nil {
			return s.sendError(nc, wc, classify(perr))
		}
		if old := sess.preps.replace(h, np); old != nil {
			old.Close()
		}
		werr, err = s.runPrepared(ctx, nc, wc, sess, tid, np, args)
	}
	if err != nil {
		if werr != nil {
			return werr // connection is gone; nothing to report to
		}
		return s.sendError(nc, wc, classify(err))
	}
	return werr
}

// runPrepared executes one prepared plan and streams its result. The
// first return is a wire write failure (ends the session); the second
// is the execution error (reported to the client by the caller).
func (s *Server) runPrepared(ctx context.Context, nc net.Conn, wc *wire.Conn, sess *session, tid string, p *db.Prepared, args []sqltypes.Value) (werr, err error) {
	if !p.Streamable() {
		res, err := p.ExecuteContext(ctx, args...)
		if err != nil {
			return nil, err
		}
		return s.sendResult(nc, wc, sess, tid, res), nil
	}
	var (
		mu    sync.Mutex
		batch []sqltypes.Row
		sent  int64
		wfail error
	)
	flushLocked := func() error {
		if len(batch) == 0 {
			return nil
		}
		pl, err := wire.EncodeBatch(batch)
		if err != nil {
			return err
		}
		batch = batch[:0]
		return s.send(nc, wc, wire.MsgBatch, pl)
	}
	sink := func(r sqltypes.Row) error {
		mu.Lock()
		defer mu.Unlock()
		if wfail != nil {
			return wfail
		}
		batch = append(batch, r.Clone())
		sent++
		if len(batch) >= s.cfg.BatchRows {
			if wfail = flushLocked(); wfail != nil {
				return wfail
			}
		}
		return nil
	}
	schema, stats, err := p.ExecuteStreamContext(ctx, sink, args...)
	if err != nil {
		return wfail, err
	}
	mu.Lock()
	ferr := flushLocked()
	rows := sent
	mu.Unlock()
	if ferr != nil {
		return ferr, nil
	}
	if werr := s.send(nc, wc, wire.MsgSchema, wire.EncodeSchema(schema)); werr != nil {
		return werr, nil
	}
	return s.send(nc, wc, wire.MsgDone, wire.EncodeDone(wire.Done{Rows: rows, StatsJSON: statsJSON(stats), TraceID: tid}, sess.proto)), nil
}
