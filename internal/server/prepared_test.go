package server_test

import (
	"fmt"
	"net"
	"testing"

	"repro/internal/engine/sqltypes"
	"repro/internal/server"
	"repro/internal/server/wire"
)

// dialWire opens a raw protocol connection with the handshake done.
func dialWire(t *testing.T, addr string) *wire.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	wc := wire.NewConn(nc)
	if err := wc.Send(wire.MsgHello, wire.EncodeHello(wire.Hello{Version: wire.ProtocolVersion, User: "raw"})); err != nil {
		t.Fatal(err)
	}
	if f, err := wc.Recv(); err != nil || f.Type != wire.MsgWelcome {
		t.Fatalf("handshake: %v %v", f, err)
	}
	return wc
}

// prepareWire sends MsgPrepare and returns the handle info.
func prepareWire(t *testing.T, wc *wire.Conn, sql string) wire.PreparedInfo {
	t.Helper()
	if err := wc.Send(wire.MsgPrepare, wire.EncodePrepare(sql)); err != nil {
		t.Fatal(err)
	}
	f, err := wc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type == wire.MsgError {
		e, _ := wire.DecodeError(f.Payload)
		t.Fatalf("prepare %q: %v", sql, e)
	}
	if f.Type != wire.MsgPrepared {
		t.Fatalf("prepare reply type 0x%02x", f.Type)
	}
	pi, err := wire.DecodePrepared(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	return pi
}

// execWire sends MsgExecPrepared and drains the reply, returning the
// row count or the wire error.
func execWire(t *testing.T, wc *wire.Conn, handle int64, args ...sqltypes.Value) (int, *wire.Error) {
	t.Helper()
	payload, err := wire.EncodeExecPrepared(handle, args)
	if err != nil {
		t.Fatal(err)
	}
	if err := wc.Send(wire.MsgExecPrepared, payload); err != nil {
		t.Fatal(err)
	}
	rows := 0
	for {
		f, err := wc.Recv()
		if err != nil {
			t.Fatal(err)
		}
		switch f.Type {
		case wire.MsgBatch:
			b, err := wire.DecodeBatch(f.Payload)
			if err != nil {
				t.Fatal(err)
			}
			rows += len(b)
		case wire.MsgSchema:
		case wire.MsgDone:
			return rows, nil
		case wire.MsgError:
			e, _ := wire.DecodeError(f.Payload)
			return rows, e
		default:
			t.Fatalf("unexpected frame 0x%02x", f.Type)
		}
	}
}

func TestPrepareExecuteCloseOverWire(t *testing.T) {
	eng, srv := startServer(t, server.Config{})
	if _, err := eng.Exec("CREATE TABLE T (i BIGINT, v DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := eng.Exec(fmt.Sprintf("INSERT INTO T VALUES (%d, %d.5)", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	wc := dialWire(t, srv.Addr())

	pi := prepareWire(t, wc, "SELECT i, v FROM T WHERE i = ?")
	if pi.NumParams != 1 {
		t.Fatalf("NumParams = %d", pi.NumParams)
	}
	for i := 0; i < 8; i++ {
		rows, werr := execWire(t, wc, pi.Handle, sqltypes.NewBigInt(int64(i)))
		if werr != nil {
			t.Fatalf("execute %d: %v", i, werr)
		}
		if rows != 1 {
			t.Fatalf("execute %d: %d rows", i, rows)
		}
	}

	// Close releases the handle; executing it afterwards is the typed
	// stale-plan rejection, which tells the client to re-prepare (not a
	// generic failure that would poison the connection).
	if err := wc.Send(wire.MsgClosePrepared, wire.EncodeClosePrepared(pi.Handle)); err != nil {
		t.Fatal(err)
	}
	if f, err := wc.Recv(); err != nil || f.Type != wire.MsgDone {
		t.Fatalf("close reply: %v %v", f, err)
	}
	_, werr := execWire(t, wc, pi.Handle, sqltypes.NewBigInt(1))
	if werr == nil || werr.Code != wire.CodeStalePlan {
		t.Fatalf("execute after close: %v, want code %q", werr, wire.CodeStalePlan)
	}

	// Unknown handles get the same typed answer.
	_, werr = execWire(t, wc, 424242, sqltypes.NewBigInt(1))
	if werr == nil || werr.Code != wire.CodeStalePlan {
		t.Fatalf("unknown handle: %v, want code %q", werr, wire.CodeStalePlan)
	}
}

// TestExecPreparedSurvivesDDL: DDL between EXECUTEs bumps the catalog
// epoch; the session must transparently re-prepare server-side — the
// retry is safe because staleness is detected before any row is sent.
func TestExecPreparedSurvivesDDL(t *testing.T) {
	eng, srv := startServer(t, server.Config{})
	if _, err := eng.Exec("CREATE TABLE T (i BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec("INSERT INTO T VALUES (7)"); err != nil {
		t.Fatal(err)
	}
	wc := dialWire(t, srv.Addr())
	pi := prepareWire(t, wc, "SELECT i FROM T WHERE i = ?")

	for round := 0; round < 3; round++ {
		if _, err := eng.Exec(fmt.Sprintf("CREATE TABLE ddl%d (a BIGINT)", round)); err != nil {
			t.Fatal(err)
		}
		rows, werr := execWire(t, wc, pi.Handle, sqltypes.NewBigInt(7))
		if werr != nil {
			t.Fatalf("round %d: %v", round, werr)
		}
		if rows != 1 {
			t.Fatalf("round %d: %d rows", round, rows)
		}
	}
}

// TestPreparePerSessionCap: a session exceeding its handle budget gets
// a clean error, and the connection stays usable.
func TestPreparePerSessionCap(t *testing.T) {
	eng, srv := startServer(t, server.Config{})
	if _, err := eng.Exec("CREATE TABLE T (i BIGINT)"); err != nil {
		t.Fatal(err)
	}
	wc := dialWire(t, srv.Addr())

	var handles []int64
	var rejected bool
	for i := 0; i < 100; i++ {
		sql := fmt.Sprintf("SELECT i FROM T WHERE i = %d", i)
		if err := wc.Send(wire.MsgPrepare, wire.EncodePrepare(sql)); err != nil {
			t.Fatal(err)
		}
		f, err := wc.Recv()
		if err != nil {
			t.Fatal(err)
		}
		switch f.Type {
		case wire.MsgPrepared:
			pi, err := wire.DecodePrepared(f.Payload)
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, pi.Handle)
		case wire.MsgError:
			rejected = true
		default:
			t.Fatalf("frame 0x%02x", f.Type)
		}
		if rejected {
			break
		}
	}
	if !rejected {
		t.Fatalf("session prepared %d handles without hitting the cap", len(handles))
	}
	// The rejection is not fatal to the session: releasing a handle
	// makes room, and the next prepare succeeds.
	if err := wc.Send(wire.MsgClosePrepared, wire.EncodeClosePrepared(handles[0])); err != nil {
		t.Fatal(err)
	}
	if f, err := wc.Recv(); err != nil || f.Type != wire.MsgDone {
		t.Fatalf("close reply: %v %v", f, err)
	}
	pi := prepareWire(t, wc, "SELECT i FROM T WHERE i = 0")
	if _, werr := execWire(t, wc, pi.Handle); werr != nil {
		t.Fatalf("after cap rejection: %v", werr)
	}
}

// TestPreparedHandlesScopedPerSession: one session cannot execute
// another session's handle.
func TestPreparedHandlesScopedPerSession(t *testing.T) {
	eng, srv := startServer(t, server.Config{})
	if _, err := eng.Exec("CREATE TABLE T (i BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec("INSERT INTO T VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	wc1 := dialWire(t, srv.Addr())
	wc2 := dialWire(t, srv.Addr())
	pi := prepareWire(t, wc1, "SELECT i FROM T WHERE i = ?")

	if rows, werr := execWire(t, wc1, pi.Handle, sqltypes.NewBigInt(1)); werr != nil || rows != 1 {
		t.Fatalf("owner session: rows=%d err=%v", rows, werr)
	}
	if _, werr := execWire(t, wc2, pi.Handle, sqltypes.NewBigInt(1)); werr == nil || werr.Code != wire.CodeStalePlan {
		t.Fatalf("foreign session executed another session's handle: %v", werr)
	}
}

// TestPreparedClosedOnDisconnect: a session's handles are released
// when it goes away, so sys.prepared does not accumulate dead plans.
func TestPreparedClosedOnDisconnect(t *testing.T) {
	eng, srv := startServer(t, server.Config{})
	if _, err := eng.Exec("CREATE TABLE T (i BIGINT)"); err != nil {
		t.Fatal(err)
	}

	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	wc := wire.NewConn(nc)
	if err := wc.Send(wire.MsgHello, wire.EncodeHello(wire.Hello{Version: wire.ProtocolVersion, User: "raw"})); err != nil {
		t.Fatal(err)
	}
	if f, err := wc.Recv(); err != nil || f.Type != wire.MsgWelcome {
		t.Fatalf("handshake: %v %v", f, err)
	}
	const sql = "SELECT i FROM T WHERE i = ?"
	prepareWire(t, wc, sql)

	countPrepared := func() int {
		res, err := eng.Exec("SELECT sql_text, cached FROM sys.prepared")
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, r := range res.Rows {
			if r[0].Str() == sql && !r[1].Bool() {
				n++
			}
		}
		return n
	}
	if got := countPrepared(); got != 1 {
		t.Fatalf("before disconnect: %d handles", got)
	}
	nc.Close()
	waitFor(t, "handles released on disconnect", func() bool { return countPrepared() == 0 })

}
