package server

import "repro/internal/engine/obs"

// The serving layer's instruments, registered on the process-wide
// registry so sys.metrics and the /metrics debug endpoint pick them up
// alongside the executor's counters.
var (
	// Connections counts TCP connections accepted over the server's
	// lifetime; SessionsActive is the number currently open.
	connections = obs.Default.Counter("engine_server_connections_total",
		"TCP connections accepted by the wire-protocol server.")
	sessionsActive = obs.Default.Gauge("engine_server_sessions_active",
		"Wire-protocol sessions currently open.")
	// StatementsInflight tracks statements that passed admission and
	// are executing right now.
	statementsInflight = obs.Default.Gauge("engine_server_statements_inflight",
		"Statements currently executing on behalf of remote sessions.")
	// AdmissionRejections counts statements refused with the typed
	// "server busy" error because the concurrent-statement limit and
	// its wait queue were both full.
	admissionRejections = obs.Default.Counter("engine_server_admission_rejections_total",
		"Statements rejected by admission control (busy errors).")
	// BytesSent/BytesReceived count wire-protocol frame bytes, flushed
	// once per statement rather than per frame.
	bytesSent = obs.Default.Counter("engine_server_bytes_sent_total",
		"Wire-protocol bytes written to clients.")
	bytesReceived = obs.Default.Counter("engine_server_bytes_received_total",
		"Wire-protocol bytes read from clients.")
	// StatementSeconds is the server-side statement latency: admission
	// wait + execution + result transmission (the full wire round trip
	// minus client-side network time).
	statementSeconds = obs.Default.Histogram("engine_server_statement_seconds",
		"Server-side statement latency including admission wait and result transmission.",
		obs.DurationBuckets)
)
