package synth

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine/db"
)

func TestStreamDeterministic(t *testing.T) {
	cfg := Config{N: 100, D: 4, Seed: 42}
	a, err := Points(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Points(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 100 || len(b) != 100 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("generation is not deterministic")
			}
		}
	}
	c, err := Points(Config{N: 100, D: 4, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if a[0][0] == c[0][0] && a[1][1] == c[1][1] {
		t.Fatal("different seeds gave identical data")
	}
}

func TestDistributionShape(t *testing.T) {
	pts, err := Points(Config{N: 20000, D: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s := core.MustNLQ(2, core.Triangular)
	for _, x := range pts {
		s.Update(x)
	}
	mu, _ := s.Mean()
	// Mixture means are uniform in [0,100]; the data mean should be
	// mid-range and the spread should reflect means spread + sd 10.
	for a, m := range mu {
		if m < 25 || m > 75 {
			t.Fatalf("mean[%d] = %g, expected mid-range", a, m)
		}
	}
	vars, _ := s.Variances()
	for a, v := range vars {
		sd := math.Sqrt(v)
		if sd < 15 || sd > 60 {
			t.Fatalf("sd[%d] = %g, expected mixture-wide spread", a, sd)
		}
	}
	// Noise points reach outside the [0,100] mean range.
	outside := 0
	for _, x := range pts {
		if x[0] < -5 || x[0] > 105 {
			outside++
		}
	}
	if outside == 0 {
		t.Fatal("expected some uniform noise outside the component range")
	}
}

func TestValidation(t *testing.T) {
	if err := Stream(Config{N: 10, D: 0}, func(int64, []float64) error { return nil }); err == nil {
		t.Fatal("d=0 must fail")
	}
	if err := Stream(Config{N: -1, D: 2}, func(int64, []float64) error { return nil }); err == nil {
		t.Fatal("n<0 must fail")
	}
	if err := Stream(Config{N: 1, D: 2, Noise: 2}, func(int64, []float64) error { return nil }); err == nil {
		t.Fatal("noise>1 must fail")
	}
}

func TestLoadTable(t *testing.T) {
	d := db.Open(db.Options{Partitions: 4})
	if err := LoadTable(d, "X", Config{N: 500, D: 3, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := d.Exec("SELECT count(*), min(i), max(i) FROM X")
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows[0]
	if r[0].Int() != 500 || r[1].Int() != 0 || r[2].Int() != 499 {
		t.Fatalf("row = %v", r)
	}
	// Replaces on reload.
	if err := LoadTable(d, "X", Config{N: 50, D: 3, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	res, _ = d.Exec("SELECT count(*) FROM X")
	if v, _ := res.Value(); v.Int() != 50 {
		t.Fatalf("reload count = %v", v)
	}
}

func TestLoadRegressionTable(t *testing.T) {
	d := db.Open(db.Options{Partitions: 4})
	beta := []float64{2, -1}
	if err := LoadRegressionTable(d, "XY", Config{N: 2000, D: 2, Seed: 3}, 7, beta, 0.1); err != nil {
		t.Fatal(err)
	}
	// Recover the planted model through the whole pipeline.
	res, err := d.Exec("SELECT sum(1.0), sum(X1), sum(X2), sum(Y), sum(X1*X1), sum(X2*X1), sum(X2*X2), sum(Y*X1), sum(Y*X2), sum(Y*Y) FROM XY")
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	s := core.MustNLQ(3, core.Triangular)
	s.N = row[0].MustFloat()
	s.L[0], s.L[1], s.L[2] = row[1].MustFloat(), row[2].MustFloat(), row[3].MustFloat()
	s.Q[0] = row[4].MustFloat()
	s.Q[3*1+0] = row[5].MustFloat()
	s.Q[3*1+1] = row[6].MustFloat()
	s.Q[3*2+0] = row[7].MustFloat()
	s.Q[3*2+1] = row[8].MustFloat()
	s.Q[3*2+2] = row[9].MustFloat()
	m, err := core.BuildLinReg(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Beta[0]-7) > 0.1 || math.Abs(m.Beta[1]-2) > 0.01 || math.Abs(m.Beta[2]+1) > 0.01 {
		t.Fatalf("recovered beta = %v", m.Beta)
	}
	if err := LoadRegressionTable(d, "XY", Config{N: 10, D: 2}, 0, []float64{1}, 0.1); err == nil {
		t.Fatal("beta arity mismatch must fail")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	rows, err := WriteCSV(&buf, Config{N: 10, D: 3, Seed: 5})
	if err != nil || rows != 10 {
		t.Fatalf("rows=%d err=%v", rows, err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 10 {
		t.Fatalf("%d lines", len(lines))
	}
	for i, ln := range lines {
		fields := strings.Split(ln, ",")
		if len(fields) != 4 {
			t.Fatalf("line %d has %d fields", i, len(fields))
		}
	}
	if !strings.HasPrefix(lines[0], "0,") || !strings.HasPrefix(lines[9], "9,") {
		t.Fatalf("id column wrong: %q ... %q", lines[0], lines[9])
	}
}

func TestXSchema(t *testing.T) {
	s := XSchema(3, true)
	if s.Len() != 5 || s.Columns[0].Name != "i" || s.Columns[4].Name != "Y" {
		t.Fatalf("schema = %v", s)
	}
}
