// Package synth generates the paper's synthetic workload (§4, "Data
// Sets"): a mixture of k = 16 normal distributions with means in
// [0, 100] and standard deviation around 10 per dimension, plus about
// 15% uniformly distributed noise points. Generation is deterministic
// given a seed and streams row by row, so the 1.6M-row configurations
// never materialize in memory.
package synth

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"strconv"

	"repro/internal/engine/db"
	"repro/internal/engine/sqltypes"
)

// Config describes a synthetic data set.
type Config struct {
	N              int     // rows
	D              int     // dimensions
	K              int     // mixture components; default 16
	Noise          float64 // fraction of uniform noise points; default 0.15
	SD             float64 // per-dimension standard deviation; default 10
	MeanLo, MeanHi float64 // component mean range; default [0, 100]
	Seed           int64
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 16
	}
	if c.Noise == 0 {
		c.Noise = 0.15
	}
	if c.SD == 0 {
		c.SD = 10
	}
	if c.MeanLo == 0 && c.MeanHi == 0 {
		c.MeanHi = 100
	}
	return c
}

// validate rejects unusable configurations.
func (c Config) validate() error {
	if c.N < 0 || c.D < 1 {
		return fmt.Errorf("synth: invalid size n=%d d=%d", c.N, c.D)
	}
	if c.K < 1 || c.Noise < 0 || c.Noise > 1 {
		return fmt.Errorf("synth: invalid mixture k=%d noise=%g", c.K, c.Noise)
	}
	return nil
}

// Stream generates the data set, invoking fn once per row with the row
// id and the point (the slice is reused; copy to retain).
func Stream(cfg Config, fn func(i int64, x []float64) error) error {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Component means.
	means := make([][]float64, cfg.K)
	for j := range means {
		mu := make([]float64, cfg.D)
		for a := range mu {
			mu[a] = cfg.MeanLo + rng.Float64()*(cfg.MeanHi-cfg.MeanLo)
		}
		means[j] = mu
	}
	span := cfg.MeanHi - cfg.MeanLo
	x := make([]float64, cfg.D)
	for i := 0; i < cfg.N; i++ {
		if rng.Float64() < cfg.Noise {
			// Uniform noise over a slightly padded domain.
			for a := range x {
				x[a] = cfg.MeanLo - 0.2*span + rng.Float64()*1.4*span
			}
		} else {
			mu := means[rng.Intn(cfg.K)]
			for a := range x {
				x[a] = mu[a] + rng.NormFloat64()*cfg.SD
			}
		}
		if err := fn(int64(i), x); err != nil {
			return err
		}
	}
	return nil
}

// Points materializes the data set; intended for tests and small runs.
func Points(cfg Config) ([][]float64, error) {
	var out [][]float64
	err := Stream(cfg, func(_ int64, x []float64) error {
		out = append(out, append([]float64(nil), x...))
		return nil
	})
	return out, err
}

// XSchema is the paper's table layout X(i, X1, ..., Xd), optionally
// with a predicted variable Y.
func XSchema(d int, withY bool) *sqltypes.Schema {
	cols := []sqltypes.Column{{Name: "i", Type: sqltypes.TypeBigInt}}
	for a := 1; a <= d; a++ {
		cols = append(cols, sqltypes.Column{Name: fmt.Sprintf("X%d", a), Type: sqltypes.TypeDouble})
	}
	if withY {
		cols = append(cols, sqltypes.Column{Name: "Y", Type: sqltypes.TypeDouble})
	}
	return &sqltypes.Schema{Columns: cols}
}

// LoadTable generates the data set directly into table name (replacing
// it if present) with layout X(i, X1..Xd).
func LoadTable(d *db.DB, name string, cfg Config) error {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return err
	}
	if d.HasTable(name) {
		if err := d.DropTable(name); err != nil {
			return err
		}
	}
	tab, err := d.CreateTable(name, XSchema(cfg.D, false))
	if err != nil {
		return err
	}
	bl, err := tab.NewBulkLoader()
	if err != nil {
		return err
	}
	row := make(sqltypes.Row, cfg.D+1)
	err = Stream(cfg, func(i int64, x []float64) error {
		row[0] = sqltypes.NewBigInt(i)
		for a, v := range x {
			row[a+1] = sqltypes.NewDouble(v)
		}
		return bl.Add(row)
	})
	if cerr := bl.Close(); err == nil {
		err = cerr
	}
	return err
}

// LoadRegressionTable generates X(i, X1..Xd, Y) with a planted linear
// model Y = beta0 + betaᵀx + N(0, noiseSD²), for regression workloads.
func LoadRegressionTable(d *db.DB, name string, cfg Config, beta0 float64, beta []float64, noiseSD float64) error {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return err
	}
	if len(beta) != cfg.D {
		return fmt.Errorf("synth: beta has %d coefficients, want d=%d", len(beta), cfg.D)
	}
	if d.HasTable(name) {
		if err := d.DropTable(name); err != nil {
			return err
		}
	}
	tab, err := d.CreateTable(name, XSchema(cfg.D, true))
	if err != nil {
		return err
	}
	bl, err := tab.NewBulkLoader()
	if err != nil {
		return err
	}
	// Independent noise stream so Y noise does not perturb X.
	yrng := rand.New(rand.NewSource(cfg.Seed + 10007))
	row := make(sqltypes.Row, cfg.D+2)
	err = Stream(cfg, func(i int64, x []float64) error {
		row[0] = sqltypes.NewBigInt(i)
		y := beta0
		for a, v := range x {
			row[a+1] = sqltypes.NewDouble(v)
			y += beta[a] * v
		}
		row[cfg.D+1] = sqltypes.NewDouble(y + yrng.NormFloat64()*noiseSD)
		return bl.Add(row)
	})
	if cerr := bl.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteCSV streams the data set as CSV with an id column, the flat-file
// form the external ("C++") comparator consumes.
func WriteCSV(w io.Writer, cfg Config) (int64, error) {
	cw := csv.NewWriter(w)
	cfg = cfg.withDefaults()
	rec := make([]string, cfg.D+1)
	var rows int64
	err := Stream(cfg, func(i int64, x []float64) error {
		rec[0] = strconv.FormatInt(i, 10)
		for a, v := range x {
			rec[a+1] = strconv.FormatFloat(v, 'g', 17, 64)
		}
		rows++
		return cw.Write(rec)
	})
	if err != nil {
		return rows, err
	}
	cw.Flush()
	return rows, cw.Error()
}
