// Package odbcsim simulates exporting a table out of the DBMS over
// ODBC — the step that dominates the paper's "analyze outside the
// database with C++" alternative (Table 2's ODBC column, up to two
// orders of magnitude above the in-DBMS times).
//
// The simulation performs the real work of an ODBC export — every
// value is fetched from storage and serialized to text, with per-row
// protocol framing — and pushes the bytes through a token-bucket
// throttle modeling the paper's 100 Mbps LAN plus per-row client
// overhead. TimeScale lets benchmarks compress the modeled wall-clock
// (the modeled seconds are always reported unscaled).
package odbcsim

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/engine/sqltypes"
	"repro/internal/engine/storage"
)

// Config models the export channel.
type Config struct {
	// BytesPerSec is the channel throughput. Default 12.5e6 (100 Mbps).
	BytesPerSec float64
	// PerRowOverheadBytes models ODBC per-row packet framing and
	// client-side driver bookkeeping, expressed as equivalent channel
	// bytes. Default 512 — ODBC row-at-a-time fetches are notoriously
	// chatty, which is how the paper's export times reach 100× compute.
	PerRowOverheadBytes int
	// TimeScale scales the modeled delay actually slept: 1.0 sleeps in
	// real time, 0.01 sleeps 1% of it, 0 disables sleeping entirely.
	// Modeled time in Stats is unaffected. Default 0.
	TimeScale float64
}

func (c Config) withDefaults() Config {
	if c.BytesPerSec <= 0 {
		c.BytesPerSec = 12.5e6
	}
	if c.PerRowOverheadBytes == 0 {
		c.PerRowOverheadBytes = 512
	}
	return c
}

// Stats reports an export.
type Stats struct {
	Rows         int64
	PayloadBytes int64         // text bytes actually written
	ChannelBytes int64         // payload plus per-row overhead
	Elapsed      time.Duration // real wall-clock including scaled sleeps
	Modeled      time.Duration // bytes / BytesPerSec, the paper-scale time
}

// Export serializes the table as CSV text to w through the modeled
// channel. The table is scanned from storage exactly once (the same
// disk I/O the in-DBMS paths pay), and every value is formatted to
// text — the genuine serialization cost of an ODBC export.
func Export(t *storage.Table, w io.Writer, cfg Config) (Stats, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	bw := bufio.NewWriterSize(w, 1<<16)
	var st Stats
	var owed float64 // modeled seconds not yet slept

	line := make([]byte, 0, 256)
	err := t.Scan(func(r sqltypes.Row) error {
		line = line[:0]
		for j, v := range r {
			if j > 0 {
				line = append(line, ',')
			}
			line = appendValueText(line, v)
		}
		line = append(line, '\n')
		if _, err := bw.Write(line); err != nil {
			return err
		}
		st.Rows++
		st.PayloadBytes += int64(len(line))
		st.ChannelBytes += int64(len(line) + cfg.PerRowOverheadBytes)
		// Throttle: accumulate modeled time, sleep in ≥1ms slices to
		// keep syscall overhead out of the measurement.
		owed += float64(len(line)+cfg.PerRowOverheadBytes) / cfg.BytesPerSec * cfg.TimeScale
		if owed >= 0.001 {
			time.Sleep(time.Duration(owed * float64(time.Second)))
			owed = 0
		}
		return nil
	})
	if err != nil {
		return st, fmt.Errorf("odbcsim: %w", err)
	}
	if owed > 0 {
		time.Sleep(time.Duration(owed * float64(time.Second)))
	}
	if err := bw.Flush(); err != nil {
		return st, fmt.Errorf("odbcsim: %w", err)
	}
	st.Elapsed = time.Since(start)
	st.Modeled = time.Duration(float64(st.ChannelBytes) / cfg.BytesPerSec * float64(time.Second))
	return st, nil
}

// appendValueText renders one value the way an ODBC text fetch would.
func appendValueText(dst []byte, v sqltypes.Value) []byte {
	switch v.Type() {
	case sqltypes.TypeNull:
		return dst // empty field
	case sqltypes.TypeDouble:
		f, _ := v.Float()
		return strconv.AppendFloat(dst, f, 'g', 17, 64)
	case sqltypes.TypeBigInt:
		return strconv.AppendInt(dst, v.Int(), 10)
	default:
		return append(dst, v.Str()...)
	}
}
