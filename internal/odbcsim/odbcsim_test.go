package odbcsim

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/engine/sqltypes"
	"repro/internal/engine/storage"
)

func makeTable(t *testing.T, n int) *storage.Table {
	t.Helper()
	schema := sqltypes.MustSchema(
		sqltypes.Column{Name: "i", Type: sqltypes.TypeBigInt},
		sqltypes.Column{Name: "x", Type: sqltypes.TypeDouble},
		sqltypes.Column{Name: "s", Type: sqltypes.TypeVarChar},
	)
	tab, err := storage.NewTable("t", schema, "", 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		row := sqltypes.Row{
			sqltypes.NewBigInt(int64(i)),
			sqltypes.NewDouble(float64(i) * 1.5),
			sqltypes.NewVarChar("r"),
		}
		if i == 3 {
			row[1] = sqltypes.Null
		}
		if err := tab.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func TestExportContent(t *testing.T) {
	tab := makeTable(t, 10)
	var buf bytes.Buffer
	st, err := Export(tab, &buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != 10 {
		t.Fatalf("rows = %d", st.Rows)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 10 {
		t.Fatalf("%d lines", len(lines))
	}
	found := 0
	for _, ln := range lines {
		fields := strings.Split(ln, ",")
		if len(fields) != 3 {
			t.Fatalf("bad line %q", ln)
		}
		if fields[0] == "3" {
			if fields[1] != "" {
				t.Fatalf("NULL should export empty, got %q", fields[1])
			}
			found++
		}
	}
	if found != 1 {
		t.Fatal("row 3 missing")
	}
	if st.PayloadBytes != int64(buf.Len()) {
		t.Fatalf("payload bytes %d, buffer %d", st.PayloadBytes, buf.Len())
	}
	if st.ChannelBytes <= st.PayloadBytes {
		t.Fatal("channel bytes must include per-row overhead")
	}
}

func TestModeledTime(t *testing.T) {
	tab := makeTable(t, 100)
	var buf bytes.Buffer
	st, err := Export(tab, &buf, Config{BytesPerSec: 1e6, PerRowOverheadBytes: 100, TimeScale: 0})
	if err != nil {
		t.Fatal(err)
	}
	wantSecs := float64(st.ChannelBytes) / 1e6
	if got := st.Modeled.Seconds(); got < wantSecs*0.99 || got > wantSecs*1.01 {
		t.Fatalf("modeled %gs, want %gs", got, wantSecs)
	}
	// With TimeScale=0 the export must be near-instant.
	if st.Elapsed > time.Second {
		t.Fatalf("unscaled export took %v", st.Elapsed)
	}
}

func TestThrottleSleeps(t *testing.T) {
	tab := makeTable(t, 200)
	var buf bytes.Buffer
	// Scale so the modeled delay is small but measurable.
	st, err := Export(tab, &buf, Config{BytesPerSec: 1e6, PerRowOverheadBytes: 1000, TimeScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	wantAtLeast := time.Duration(float64(st.Modeled) * 0.04)
	if st.Elapsed < wantAtLeast {
		t.Fatalf("elapsed %v, expected at least %v of throttling", st.Elapsed, wantAtLeast)
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.BytesPerSec != 12.5e6 || cfg.PerRowOverheadBytes != 512 {
		t.Fatalf("defaults = %+v", cfg)
	}
}
