package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sqlgen"
)

// runExecutorStats surfaces the executor's per-query statistics — the
// observability half of the parallel scan core: rows and bytes
// scanned, how evenly the partitions shared the work, and where the
// wall time went across the aggregate UDF protocol's four phases.
// The paper reports only end-to-end seconds; this table shows what
// those seconds were spent on.
func runExecutorStats(cfg Config) ([]*Table, error) {
	const dims = 16
	n := cfg.rows(100)

	d, cleanup, err := newDB(cfg)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	if err := loadX(d, cfg, n, dims); err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "a3",
		Title: "Executor statistics: scan volume, partition skew, phase times",
		Header: []string{"query", "rows scanned", "bytes", "emitted",
			"parts", "skew", "plan", "scan", "merge", "finalize", "total"},
		Note: "phase times map to the aggregate UDF protocol: scan = init+accumulate (1-2), merge = partial merge (3), finalize = result packing (4).",
	}
	queries := []struct {
		label string
		sql   string
	}{
		{"aggregate UDF (nlq_list)", sqlgen.NLQUDFQuery("X", sqlgen.Dims(dims), core.Triangular, sqlgen.ListStyle)},
		{"grouped sum", "SELECT i % 8, sum(X1), sum(X2) FROM X GROUP BY i % 8"},
		{"projection", "SELECT i, X1 + X2 FROM X WHERE X1 > 0"},
	}
	for _, q := range queries {
		if _, err := d.Exec(q.sql); err != nil {
			return nil, err
		}
		s := d.LastStats()
		if s == nil {
			return nil, fmt.Errorf("harness: no stats recorded for %s", q.label)
		}
		t.Rows = append(t.Rows, []string{
			q.label,
			fmt.Sprintf("%d", s.RowsScanned),
			fmt.Sprintf("%d", s.BytesRead),
			fmt.Sprintf("%d", s.RowsEmitted),
			itoa(s.Partitions),
			fmt.Sprintf("%.2f", s.Skew()),
			secs(s.Plan), secs(s.Scan), secs(s.Merge), secs(s.Finalize), secs(s.Total),
		})
	}
	return []*Table{t}, nil
}
