package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config {
	return Config{Scale: 0.0005, Partitions: 4, Runs: 1, Out: &bytes.Buffer{}}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 0.05 || c.Partitions != 20 || c.Runs != 1 || c.Out == nil || c.Seed == 0 {
		t.Fatalf("defaults = %+v", c)
	}
	if n := c.rows(100); n != 5000 {
		t.Fatalf("rows(100) = %d", n)
	}
	small := Config{Scale: 1e-9}.withDefaults()
	if small.Scale != 1e-9 {
		t.Fatal("explicit scale overridden")
	}
	if n := small.rows(100); n != 20 {
		t.Fatalf("row floor = %d", n)
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"t1", "t2", "t3", "t4", "t5", "t6", "f1", "f2", "f3", "f4", "f5", "f6", "a1", "a2"} {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q missing", id)
		}
	}
	if _, ok := ByID("zz"); ok {
		t.Error("unknown id matched")
	}
}

func TestRunAllRejectsUnknown(t *testing.T) {
	if err := RunAll(tiny(), []string{"nope"}); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

// parseCell reads a seconds cell back as a float.
func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return f
}

func checkTable(t *testing.T, tb *Table, wantRows int) {
	t.Helper()
	if len(tb.Rows) != wantRows {
		t.Fatalf("%s: %d rows, want %d", tb.ID, len(tb.Rows), wantRows)
	}
	for _, r := range tb.Rows {
		if len(r) != len(tb.Header) {
			t.Fatalf("%s: row width %d vs header %d", tb.ID, len(r), len(tb.Header))
		}
	}
}

func TestTable1(t *testing.T) {
	tabs, err := runTable1(tiny().withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tabs[0], 5)
	// All timing cells parse as positive floats.
	for _, r := range tabs[0].Rows {
		for _, c := range r[1:] {
			if v := parseCell(t, c); v < 0 {
				t.Fatalf("negative time %q", c)
			}
		}
	}
}

func TestTable2(t *testing.T) {
	tabs, err := runTable2(tiny().withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tabs[0], 8)
	// ODBC modeled time must dominate the single-threaded compute on
	// the same rows (the paper's headline gap). Both scale with the
	// data volume, so the assertion holds even at the tiny test scale,
	// where the UDF column is dominated by fixed engine overhead.
	for _, r := range tabs[0].Rows {
		cpp := parseCell(t, r[2])
		odbc := parseCell(t, r[5])
		if odbc <= cpp {
			t.Fatalf("ODBC %g not above C++ compute %g in row %v", odbc, cpp, r)
		}
	}
}

func TestTable3(t *testing.T) {
	tabs, err := runTable3(tiny().withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tabs[0], 5)
}

func TestTable4(t *testing.T) {
	tabs, err := runTable4(tiny().withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tabs[0], 12) // 4 sizes × 3 techniques
}

func TestTable5(t *testing.T) {
	tabs, err := runTable5(tiny().withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tabs[0], 12) // 2 sizes × 6 group counts
}

func TestTable6(t *testing.T) {
	cfg := tiny().withDefaults()
	tabs, err := runTable6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tabs[0], 5)
	// Call counts follow the lower-triangle plan.
	wantCalls := []string{"1", "3", "10", "36", "136"}
	for i, r := range tabs[0].Rows {
		if r[2] != wantCalls[i] {
			t.Fatalf("row %d calls = %s, want %s", i, r[2], wantCalls[i])
		}
	}
}

func TestFigure1And2(t *testing.T) {
	if testing.Short() {
		t.Skip("many measurements")
	}
	tabs, err := runFigure1(tiny().withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tabs[0], 5)
	tabs, err = runFigure2(tiny().withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tabs[0], 5)
}

func TestFigure4And5(t *testing.T) {
	if testing.Short() {
		t.Skip("many measurements")
	}
	tabs, err := runFigure4(tiny().withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 {
		t.Fatalf("%d tables", len(tabs))
	}
	checkTable(t, tabs[0], 5)
	checkTable(t, tabs[1], 5)
	tabs, err = runFigure5(tiny().withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tabs[0], 5)
	checkTable(t, tabs[1], 5)
}

func TestFigure3(t *testing.T) {
	tabs, err := runFigure3(tiny().withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 {
		t.Fatalf("%d tables", len(tabs))
	}
	checkTable(t, tabs[0], 5)
	checkTable(t, tabs[1], 5)
}

func TestFigure6(t *testing.T) {
	tabs, err := runFigure6(tiny().withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tabs[0], 5)
}

func TestAblations(t *testing.T) {
	tabs, err := runAblatePartitions(tiny().withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tabs[0], 2)
	tabs, err = runAblateSQLStyle(tiny().withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tabs[0], 3)
	// Statement counts: 1 + d + d(d+1)/2.
	if tabs[0].Rows[0][3] != "15" || tabs[0].Rows[2][3] != "153" {
		t.Fatalf("statement counts: %v", tabs[0].Rows)
	}
}

func TestClusterScale(t *testing.T) {
	tabs, err := runClusterScale(tiny().withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tabs[0], 3) // 1 process, 2 shards, 4 shards
	for _, r := range tabs[0].Rows {
		for _, c := range r[1:4] {
			if v := parseCell(t, c); v < 0 {
				t.Fatalf("negative time %q", c)
			}
		}
		if !strings.HasSuffix(r[4], "x") {
			t.Fatalf("speedup cell %q", r[4])
		}
	}
	if !strings.Contains(tabs[0].Note, "shard_unavailable") {
		t.Fatalf("partial-failure leg missing from note: %q", tabs[0].Note)
	}
}

func TestRunAllSingleAndPrint(t *testing.T) {
	var buf bytes.Buffer
	cfg := tiny()
	cfg.Out = &buf
	if err := RunAll(cfg, []string{"t3"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== t3:") || !strings.Contains(out, "[t3 completed in") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestTableSourceScan(t *testing.T) {
	cfg := tiny().withDefaults()
	d, cleanup, err := newDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	if err := loadX(d, cfg, 50, 3); err != nil {
		t.Fatal(err)
	}
	src, err := newTableSource(d, "X", 3)
	if err != nil {
		t.Fatal(err)
	}
	if src.Dims() != 3 {
		t.Fatalf("dims = %d", src.Dims())
	}
	var count int
	if err := src.Scan(func(x []float64) error {
		if len(x) != 3 {
			t.Fatalf("point width %d", len(x))
		}
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 50 {
		t.Fatalf("scanned %d", count)
	}
	if _, err := newTableSource(d, "missing", 3); err == nil {
		t.Fatal("missing table must fail")
	}
}

func TestTiming(t *testing.T) {
	tm := Timing{Runs: []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond}}
	if got := tm.Mean(); got != 200*time.Millisecond {
		t.Errorf("Mean() = %v, want 200ms", got)
	}
	if got := tm.Min(); got != 100*time.Millisecond {
		t.Errorf("Min() = %v, want 100ms", got)
	}
	if got := tm.Max(); got != 300*time.Millisecond {
		t.Errorf("Max() = %v, want 300ms", got)
	}
	if got := tm.Seconds(); got != 0.2 {
		t.Errorf("Seconds() = %v, want 0.2", got)
	}
	if got := tm.String(); got != "0.2000 [0.1000..0.3000]" {
		t.Errorf("String() = %q", got)
	}
	single := Timing{Runs: []time.Duration{time.Second}}
	if got := single.String(); got != "1.0000" {
		t.Errorf("single-run String() = %q", got)
	}
	var empty Timing
	if empty.Mean() != 0 || empty.Min() != 0 || empty.Max() != 0 {
		t.Errorf("empty Timing should be all zero")
	}
	if got := secs(empty); got != "0.0000" {
		t.Errorf("secs(empty) = %q", got)
	}
	if got := secs(1500 * time.Millisecond); got != "1.5000" {
		t.Errorf("secs(duration) = %q", got)
	}
}

func TestTimeItRecordsEveryRun(t *testing.T) {
	cfg := Config{Runs: 3}.withDefaults()
	n := 0
	tm, err := timeIt(cfg, func() error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || len(tm.Runs) != 3 {
		t.Errorf("ran %d times, recorded %d, want 3/3", n, len(tm.Runs))
	}
	wantErr := fmt.Errorf("boom")
	if _, err := timeIt(cfg, func() error { return wantErr }); err != wantErr {
		t.Errorf("timeIt error = %v, want boom", err)
	}
}

func TestRunAllWritesJSON(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	cfg := Config{Scale: 0.002, Runs: 1, Out: &buf, JSONDir: dir}
	if err := RunAll(cfg, []string{"a3"}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "BENCH_a3.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		ID     string `json:"id"`
		Tables []struct {
			Header []string   `json:"header"`
			Rows   [][]string `json:"rows"`
		} `json:"tables"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("artifact is not JSON: %v", err)
	}
	if doc.ID != "a3" || len(doc.Tables) == 0 || len(doc.Tables[0].Rows) == 0 {
		t.Errorf("artifact missing content: %+v", doc)
	}
}
