package harness

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/engine/db"
	"repro/internal/sqlgen"
)

// runColumnarScan (a8) measures the row-vs-columnar crossover: the
// same cold n,L,Q model-suite build (summaries invalidated before
// every repetition, so each pays a full scan) and the same vectorized
// filter+project scan, on two engines over identical data — one on
// the default row-interpreted path, one with Options.Columnar. The
// block path must be purely a performance lever: the merged summaries
// and the regression coefficients solved from them are asserted
// byte-for-byte identical across the two modes, and an ineligible
// expression shape is run under the flag to confirm the fallback
// still answers correctly.
func runColumnarScan(cfg Config) ([]*Table, error) {
	const dims = 16
	out := &Table{
		ID: "a8",
		Title: fmt.Sprintf("Ablation: row vs columnar scan path at d=%d (secs)",
			dims),
		Header: []string{"n x 1000", "row cold build", "columnar cold build", "build speedup",
			"row filter scan", "columnar filter scan", "scan speedup"},
		Note: "cold builds invalidate the summary cache each repetition and rescan; " +
			"the columnar engine serves them from column segments via block kernels. " +
			"Merged n,L,Q and linear-regression coefficients are asserted bit-identical across modes.",
	}
	cols := sqlgen.Dims(dims)
	scanSQL := fmt.Sprintf("SELECT %s + %s FROM X WHERE %s > 0", cols[0], cols[1], cols[2])
	for _, nk := range []int{200, 400, 800} {
		n := cfg.rows(nk)
		row := []string{itoa(nk)}
		var builds [2]Timing
		var scans [2]Timing
		var sums [2]*core.NLQ
		for mode, columnar := range []bool{false, true} {
			// Separate directories: the two engines must not share a
			// row log (or segments).
			mcfg := cfg
			mcfg.Dir = ""
			d, cleanup, err := newDBMode(mcfg, columnar)
			if err != nil {
				return nil, err
			}
			if err := loadX(d, cfg, n, dims); err != nil {
				cleanup()
				return nil, err
			}
			ctx := cfg.ctx()
			build := func() error {
				s, _, err := d.SummaryNLQ(ctx, "X", cols, core.Triangular)
				if err != nil {
					return err
				}
				return buildAllModels(s)
			}
			// One untimed build first so the columnar engine's lazy
			// segment materialization is not billed to the measurement:
			// both modes then time cold *summary* scans over settled
			// storage.
			if err := build(); err != nil {
				cleanup()
				return nil, err
			}
			builds[mode], err = timeIt(cfg, func() error {
				d.InvalidateSummaries("X")
				return build()
			})
			if err != nil {
				cleanup()
				return nil, err
			}
			sums[mode], _, err = d.SummaryNLQ(ctx, "X", cols, core.Triangular)
			if err != nil {
				cleanup()
				return nil, err
			}
			scans[mode], err = timeIt(cfg, func() error {
				_, err := d.Exec(scanSQL)
				return err
			})
			if err != nil {
				cleanup()
				return nil, err
			}
			if columnar {
				if err := checkFallbackShape(d, n); err != nil {
					cleanup()
					return nil, err
				}
			}
			cleanup()
		}
		if err := nlqBitsIdentical(sums[0], sums[1]); err != nil {
			return nil, fmt.Errorf("a8: n=%d summaries differ across modes: %w", n, err)
		}
		if err := linRegBitsIdentical(sums[0], sums[1]); err != nil {
			return nil, fmt.Errorf("a8: n=%d coefficients differ across modes: %w", n, err)
		}
		row = append(row, secs(builds[0]), secs(builds[1]), ratio(builds[0], builds[1]),
			secs(scans[0]), secs(scans[1]), ratio(scans[0], scans[1]))
		out.Rows = append(out.Rows, row)
	}
	return []*Table{out}, nil
}

// checkFallbackShape runs an expression the vector compiler rejects
// (a function call) under the columnar flag and sanity-checks the
// row-path fallback produced the full result set.
func checkFallbackShape(d *db.DB, n int) error {
	res, err := d.Exec("SELECT power(X1, 2) FROM X")
	if err != nil {
		return fmt.Errorf("a8: fallback shape failed under -columnar: %w", err)
	}
	if len(res.Rows) != n {
		return fmt.Errorf("a8: fallback shape returned %d rows, want %d", len(res.Rows), n)
	}
	return nil
}

// nlqBitsIdentical requires two summaries to agree to the last bit —
// the columnar kernels accumulate in the row path's exact order, so
// anything short of equality is a defect, not rounding.
func nlqBitsIdentical(a, b *core.NLQ) error {
	if a.D != b.D || math.Float64bits(a.N) != math.Float64bits(b.N) {
		return fmt.Errorf("n/d: %v/%d vs %v/%d", a.N, a.D, b.N, b.D)
	}
	for i := range a.L {
		if math.Float64bits(a.L[i]) != math.Float64bits(b.L[i]) {
			return fmt.Errorf("L[%d]: %v vs %v", i, a.L[i], b.L[i])
		}
		if math.Float64bits(a.Min[i]) != math.Float64bits(b.Min[i]) ||
			math.Float64bits(a.Max[i]) != math.Float64bits(b.Max[i]) {
			return fmt.Errorf("min/max[%d] differ", i)
		}
	}
	for i := range a.Q {
		if math.Float64bits(a.Q[i]) != math.Float64bits(b.Q[i]) {
			return fmt.Errorf("Q[%d]: %v vs %v", i, a.Q[i], b.Q[i])
		}
	}
	return nil
}

// linRegBitsIdentical solves the normal equations from both summaries
// and requires bit-identical coefficients.
func linRegBitsIdentical(a, b *core.NLQ) error {
	ma, err := core.BuildLinReg(a)
	if err != nil {
		return err
	}
	mb, err := core.BuildLinReg(b)
	if err != nil {
		return err
	}
	for i := range ma.Beta {
		if math.Float64bits(ma.Beta[i]) != math.Float64bits(mb.Beta[i]) {
			return fmt.Errorf("beta[%d]: %v vs %v", i, ma.Beta[i], mb.Beta[i])
		}
	}
	return nil
}

// ratio reports a/b — how many times faster the second arm ran. The
// fastest repetition of each arm is compared (best-of-N): scheduler
// and page-cache noise only ever slows a run down, so the minimum is
// the stable estimate of each path's actual cost.
func ratio(a, b Timing) string {
	if s := b.Min().Seconds(); s > 0 {
		return fmt.Sprintf("%.1fx", a.Min().Seconds()/s)
	}
	return "-"
}
