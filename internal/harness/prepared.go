package harness

import (
	"fmt"
	"time"

	"repro/internal/engine/db"
	"repro/internal/engine/sqltypes"
	"repro/internal/nlqudf"
	"repro/internal/score"
	"repro/internal/server"
	"repro/internal/sqlgen"
	"repro/pkg/client"
)

// runPreparedQPS (a6) measures the high-QPS statement path: many small
// point-scoring requests over the wire, where per-statement planning
// cost rivals the scan itself. Three clients issue the same workload:
// ad-hoc (every request is unique SQL text, planned from scratch),
// plan-cache (identical text each time; the server's LRU plan cache
// serves the plan), and prepared (PREPARE once, EXECUTE with a bound
// `?` parameter per request).
func runPreparedQPS(cfg Config) ([]*Table, error) {
	// d=32 matches the paper's widest scoring models and makes the
	// per-statement planning cost (parse, sema, compile of a 33-arg UDF
	// call) visible next to a point scan; few partitions keep the scan
	// fan-out from drowning it.
	const dims, k = 32, 4
	const requests = 200
	t := &Table{
		ID:     "a6",
		Title:  fmt.Sprintf("Point-scoring QPS over the wire at d=%d: ad-hoc SQL vs plan cache vs PREPARE/EXECUTE", dims),
		Header: []string{"n x1000(scaled)", "ad-hoc qps", "plan-cache qps", "prepared qps", "prepared/ad-hoc"},
		Note:   "each arm issues " + itoa(requests) + " single-point scoring requests; ad-hoc requests are textually unique so every one is parsed, checked and planned from scratch.",
	}
	// An in-memory database: the bulk experiments deliberately re-read
	// partition files on every scan (the paper's cache-free methodology),
	// but a point-serving workload assumes a hot working set — here the
	// statement path, not the disk, should be the variable under test.
	cfg.Partitions = 4 // point queries, not bulk scans
	d := db.Open(db.Options{Partitions: cfg.Partitions})
	if err := nlqudf.Register(d); err != nil {
		return nil, err
	}
	if err := score.Register(d); err != nil {
		return nil, err
	}

	srv := server.New(d, server.Config{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		return nil, err
	}
	defer srv.Close()
	// Auto-prepare is disabled so the ad-hoc and plan-cache arms really
	// go through MsgQuery; the prepared arm uses the explicit Stmt API.
	pool, err := client.Open(client.Config{Addr: srv.Addr(), User: "harness", PoolSize: 2, AutoPrepareAfter: -1})
	if err != nil {
		return nil, err
	}
	defer pool.Close()

	dcols := sqlgen.Dims(dims)
	for _, nk := range []int{1, 10} {
		n := cfg.rows(nk)
		if n <= 2*dims { // regression training needs n > d+1 even at tiny scales
			n = 2*dims + 2
		}
		if err := prepareScoringModels(d, cfg, n, dims, k); err != nil {
			return nil, err
		}
		base := sqlgen.RegScoreUDF("X", "BETA", "i", dcols)

		adhoc, err := qps(cfg, requests, func(r int) error {
			// The trailing comment makes every request's text unique, so
			// neither the plan cache nor a prepared handle can help.
			sql := fmt.Sprintf("%s WHERE X.i = %d /* adhoc %d */", base, r%n, r)
			_, err := pool.Query(cfg.ctx(), sql)
			return err
		})
		if err != nil {
			return nil, err
		}

		cachedSQL := fmt.Sprintf("%s WHERE X.i = %d", base, n/2)
		cached, err := qps(cfg, requests, func(int) error {
			_, err := pool.Query(cfg.ctx(), cachedSQL)
			return err
		})
		if err != nil {
			return nil, err
		}

		stmt := pool.Prepare(base + " WHERE X.i = ?")
		prepared, err := qps(cfg, requests, func(r int) error {
			_, err := stmt.Query(cfg.ctx(), sqltypes.NewBigInt(int64(r%n)))
			return err
		})
		if err != nil {
			return nil, err
		}

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d (%d rows)", nk, n),
			fmt.Sprintf("%.0f", adhoc),
			fmt.Sprintf("%.0f", cached),
			fmt.Sprintf("%.0f", prepared),
			fmt.Sprintf("%.2fx", prepared/adhoc),
		})
	}

	// Surface the plan-cache counters through the same wire path a
	// client would use; a zero hit count means the cache never served.
	res, err := pool.Query(cfg.ctx(), "SELECT name, value FROM sys.metrics WHERE name = 'engine_plan_cache_hits'")
	if err == nil && len(res.Rows) == 1 {
		hits, _ := res.Rows[0][1].Float()
		t.Note += fmt.Sprintf(" engine_plan_cache_hits=%.0f after the run.", hits)
	}
	return []*Table{t}, nil
}

// qps runs fn for the given number of requests and returns the
// achieved requests/second.
func qps(cfg Config, requests int, fn func(r int) error) (float64, error) {
	start := time.Now()
	for r := 0; r < requests; r++ {
		if err := cfg.ctx().Err(); err != nil {
			return 0, err
		}
		if err := fn(r); err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return float64(requests) / elapsed.Seconds(), nil
}
