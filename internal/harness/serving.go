package harness

import (
	"fmt"
	"os"

	"repro/internal/engine/db"
	"repro/internal/engine/sqltypes"
	"repro/internal/odbcsim"
	"repro/internal/server"
	"repro/internal/sqlgen"
	"repro/pkg/client"
)

// runServingScoring (a4) compares the three ways scores can leave the
// system: consumed in-process (the paper's in-DBMS ideal), streamed to
// a remote client over the wire protocol (what twmd serves), and the
// paper's strawman — exporting the data set over simulated ODBC so an
// external program can score it. The first two scan and score inside
// the engine; the export pays serialization and the modeled channel
// before any scoring happens at all.
func runServingScoring(cfg Config) ([]*Table, error) {
	const dims, k = 8, 4
	t := &Table{
		ID:     "a4",
		Title:  fmt.Sprintf("Regression scoring delivery at d=%d: in-engine vs wire client vs ODBC export (secs)", dims),
		Header: []string{"n x1000(scaled)", "in-engine", "wire client", "odbc export (modeled)"},
		Note:   "in-engine and wire run the same scoring UDF scan; odbc export is the modeled channel time to even get X out of the DBMS.",
	}
	d, cleanup, err := newDB(cfg)
	if err != nil {
		return nil, err
	}
	defer cleanup()

	// One wire server fronts the same engine for the whole experiment,
	// with a pooled client dialed to it — the twmd topology, in-process.
	srv := server.New(d, server.Config{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		return nil, err
	}
	defer srv.Close()
	pool, err := client.Open(client.Config{Addr: srv.Addr(), User: "harness", PoolSize: 2})
	if err != nil {
		return nil, err
	}
	defer pool.Close()

	dcols := sqlgen.Dims(dims)
	for _, nk := range []int{100, 200, 400} {
		n := cfg.rows(nk)
		if err := prepareScoringModels(d, cfg, n, dims, k); err != nil {
			return nil, err
		}
		sql := sqlgen.RegScoreUDF("X", "BETA", "i", dcols)

		inproc, err := timeIt(cfg, func() error { return discard(cfg, d, sql) })
		if err != nil {
			return nil, err
		}
		wireT, err := timeIt(cfg, func() error {
			_, err := pool.QueryStream(cfg.ctx(), sql, func(sqltypes.Row) error { return nil })
			return err
		})
		if err != nil {
			return nil, err
		}
		exportSecs, err := exportModeledSecs(cfg, d)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d (%d rows)", nk, n),
			secs(inproc), secs(wireT), fmt.Sprintf("%.4f", exportSecs),
		})
	}
	return []*Table{t}, nil
}

// exportModeledSecs exports X through the simulated ODBC channel and
// returns the modeled transfer seconds.
func exportModeledSecs(cfg Config, d *db.DB) (float64, error) {
	t, err := d.Table("X")
	if err != nil {
		return 0, err
	}
	f, err := os.CreateTemp("", "statsudf-a4-*.csv")
	if err != nil {
		return 0, err
	}
	defer os.Remove(f.Name())
	st, err := odbcsim.Export(t, f, cfg.ODBC)
	f.Close()
	if err != nil {
		return 0, err
	}
	return st.Modeled.Seconds(), nil
}
