package harness

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine/db"
	"repro/internal/engine/exec"
	"repro/internal/engine/sqlparser"
	"repro/internal/nlqudf"
	"repro/internal/score"
	"repro/internal/server"
	"repro/internal/server/wire"
)

// runClusterScale (a7) pits the paper's scale-up answer — one engine,
// many partitions — against scale-out: the same workload sharded over
// 2 and 4 twmd nodes behind a cluster coordinator. Each arm loads the
// identical row set, then builds n,L,Q cold (every shard scans its
// slice) and warm (every shard answers from its summary cache and the
// coordinator only re-merges the partials). The interesting ratio is
// cold-build time, where scan parallelism across processes should pay;
// the warm build measures the floor the coordinator's merge adds.
func runClusterScale(cfg Config) ([]*Table, error) {
	const dims = 8
	n := cfg.rows(100)
	t := &Table{
		ID:    "a7",
		Title: fmt.Sprintf("Distributed scale-out: n,L,Q build over shard fleets vs one process (n=%d, d=%d)", n, dims),
		Header: []string{
			"topology", "load s", "cold n,L,Q s", "warm n,L,Q s", "cold speedup",
		},
		Note: "cold scans every partition; warm is served from the shards' summary caches with only the coordinator's partial merge on top.",
	}

	stmts, err := clusterWorkload(n, dims, cfg.Seed)
	if err != nil {
		return nil, err
	}

	// Scale-up baseline: one in-memory engine with the full partition
	// budget, the configuration every other experiment measures.
	base, err := runClusterArm(cfg, n, stmts, func() (clusterEngine, func() error, error) {
		d := db.Open(db.Options{Partitions: cfg.Partitions})
		if err := nlqudf.Register(d); err != nil {
			return nil, nil, err
		}
		return d, d.Close, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, base.row(fmt.Sprintf("1 process (%d partitions)", cfg.Partitions), base))

	for _, shards := range []int{2, 4} {
		arm, err := runClusterArm(cfg, n, stmts, func() (clusterEngine, func() error, error) {
			return openCluster(cfg, shards)
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, arm.row(fmt.Sprintf("%d shards + coordinator", shards), base))
	}

	// Partial-failure leg: a dead shard must surface as a typed
	// shard_unavailable, not a hang — and the attempt moves
	// engine_cluster_shard_errors_total, which CI's -check-metrics
	// asserts on.
	if err := clusterKillOneShard(cfg); err != nil {
		return nil, err
	}
	t.Note += " A shard was killed after the measurements and the next build failed fast with shard_unavailable."
	return []*Table{t}, nil
}

// clusterEngine is the slice of the engine surface the a7 arms need:
// both *db.DB (scale-up) and *cluster.Coordinator (scale-out) run
// parsed statements and answer summary requests.
type clusterEngine interface {
	RunContext(ctx context.Context, stmt sqlparser.Statement) (*exec.Result, error)
	SummaryNLQ(ctx context.Context, table string, cols []string, mt core.MatrixType) (*core.NLQ, bool, error)
}

// clusterArmResult carries one topology's measurements.
type clusterArmResult struct {
	load time.Duration
	cold time.Duration
	warm Timing
}

// row renders the arm against the scale-up baseline.
func (a clusterArmResult) row(name string, base clusterArmResult) []string {
	speed := "1.00x"
	if a.cold > 0 && base.cold > 0 {
		speed = fmt.Sprintf("%.2fx", base.cold.Seconds()/a.cold.Seconds())
	}
	return []string{name, secs(a.load), secs(a.cold), secs(a.warm), speed}
}

// runClusterArm opens one topology, loads the workload through it,
// and measures the cold and warm n,L,Q builds.
func runClusterArm(cfg Config, n int, stmts []sqlparser.Statement, open func() (clusterEngine, func() error, error)) (clusterArmResult, error) {
	var a clusterArmResult
	eng, closeEng, err := open()
	if err != nil {
		return a, err
	}
	defer closeEng()

	start := time.Now()
	for _, stmt := range stmts {
		if err := cfg.ctx().Err(); err != nil {
			return a, err
		}
		if _, err := eng.RunContext(cfg.ctx(), stmt); err != nil {
			return a, err
		}
	}
	a.load = time.Since(start)

	start = time.Now()
	if _, _, err := eng.SummaryNLQ(cfg.ctx(), "CX", nil, core.Triangular); err != nil {
		return a, err
	}
	a.cold = time.Since(start)

	a.warm, err = timeIt(cfg, func() error {
		s, hit, err := eng.SummaryNLQ(cfg.ctx(), "CX", nil, core.Triangular)
		if err != nil {
			return err
		}
		if !hit {
			return fmt.Errorf("a7: warm n,L,Q build missed the summary cache")
		}
		if s.N != float64(n) {
			return fmt.Errorf("a7: summary n=%g, want %d", s.N, n)
		}
		return nil
	})
	return a, err
}

// openCluster boots `shards` in-process twmd shard nodes (each owning
// an equal slice of the partition budget) plus a coordinator over
// them, and returns the coordinator with a teardown that drains the
// whole fleet.
func openCluster(cfg Config, shards int) (clusterEngine, func() error, error) {
	per := cfg.Partitions / shards
	if per < 1 {
		per = 1
	}
	var closers []func() error
	teardown := func() error {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
		return nil
	}
	addrs := make([]string, 0, shards)
	for i := 0; i < shards; i++ {
		sd := db.Open(db.Options{Partitions: per})
		if err := nlqudf.Register(sd); err != nil {
			teardown()
			return nil, nil, err
		}
		if err := score.Register(sd); err != nil {
			teardown()
			return nil, nil, err
		}
		srv := server.New(sd, server.Config{Addr: "127.0.0.1:0"})
		if err := srv.Start(); err != nil {
			teardown()
			return nil, nil, err
		}
		closers = append(closers, srv.Close)
		addrs = append(addrs, srv.Addr())
	}
	local := db.Open(db.Options{})
	if err := nlqudf.Register(local); err != nil {
		teardown()
		return nil, nil, err
	}
	coord, err := cluster.New(local, cluster.Config{Shards: addrs, Partitions: cfg.Partitions, User: "bench-a7", PoolSize: 2})
	if err != nil {
		teardown()
		return nil, nil, err
	}
	closers = append(closers, coord.Close)
	return coord, teardown, nil
}

// clusterKillOneShard boots the smallest fleet, loads a sliver, kills
// one shard, and demands the next build fail fast with the typed
// cluster error.
func clusterKillOneShard(cfg Config) error {
	stmts, err := clusterWorkload(40, 2, cfg.Seed+1)
	if err != nil {
		return err
	}
	sd := db.Open(db.Options{Partitions: 1})
	if err := nlqudf.Register(sd); err != nil {
		return err
	}
	sd2 := db.Open(db.Options{Partitions: 1})
	if err := nlqudf.Register(sd2); err != nil {
		return err
	}
	srv := server.New(sd, server.Config{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		return err
	}
	defer srv.Close()
	srv2 := server.New(sd2, server.Config{Addr: "127.0.0.1:0"})
	if err := srv2.Start(); err != nil {
		return err
	}
	local := db.Open(db.Options{})
	if err := nlqudf.Register(local); err != nil {
		return err
	}
	coord, err := cluster.New(local, cluster.Config{Shards: []string{srv.Addr(), srv2.Addr()}, User: "bench-a7", PoolSize: 1})
	if err != nil {
		return err
	}
	defer coord.Close()
	for _, stmt := range stmts {
		if _, err := coord.RunContext(cfg.ctx(), stmt); err != nil {
			return err
		}
	}
	srv2.Close() // the fleet loses a shard mid-service
	_, _, err = coord.SummaryNLQ(cfg.ctx(), "CX", nil, core.Triangular)
	if err == nil {
		return fmt.Errorf("a7: n,L,Q build over a dead shard succeeded")
	}
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeShardUnavailable {
		return fmt.Errorf("a7: dead-shard build failed untyped: %w", err)
	}
	return nil
}

// clusterWorkload renders the deterministic CX load as parsed
// statements: one CREATE TABLE followed by batched literal INSERTs,
// the exact text every arm (local or coordinator) executes.
func clusterWorkload(n, dims int, seed int64) ([]sqlparser.Statement, error) {
	const batch = 200
	rng := rand.New(rand.NewSource(seed))
	cols := make([]string, dims)
	for j := range cols {
		cols[j] = "x" + itoa(j+1)
	}
	var texts []string
	texts = append(texts, "CREATE TABLE CX ("+strings.Join(cols, " DOUBLE, ")+" DOUBLE)")
	for at := 0; at < n; at += batch {
		m := batch
		if at+m > n {
			m = n - at
		}
		var b strings.Builder
		b.WriteString("INSERT INTO CX (" + strings.Join(cols, ", ") + ") VALUES ")
		for r := 0; r < m; r++ {
			if r > 0 {
				b.WriteString(", ")
			}
			b.WriteByte('(')
			for j := 0; j < dims; j++ {
				if j > 0 {
					b.WriteString(", ")
				}
				b.WriteString(strconv.FormatFloat(float64(rng.Intn(2000))/8, 'g', -1, 64))
			}
			b.WriteByte(')')
		}
		texts = append(texts, b.String())
	}
	stmts := make([]sqlparser.Statement, 0, len(texts))
	for _, sql := range texts {
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			return nil, fmt.Errorf("a7 workload: %w", err)
		}
		stmts = append(stmts, stmt)
	}
	return stmts, nil
}
