package harness

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/engine/db"
	"repro/internal/engine/sqltypes"
	"repro/internal/sqlgen"
	"repro/internal/synth"
)

// runSummaryCache (a5) measures what the incremental summary catalog
// buys on the paper's hottest path — rebuilding the model suite
// (correlation + PCA + linear regression) from n, L, Q:
//
//   - cold:        the entry is invalidated first, so the build pays
//     one parallel scan (the legacy path every model paid before);
//   - warm:        the entry is fresh, so the build is pure O(d²)
//     model math with zero partition scans;
//   - incremental: 1% more rows are appended through Table.Insert
//     (delta-merged into the cache at write time), then the build runs
//     warm again — still zero scans.
//
// The zero-scan claims are asserted via ScannedRows, and the
// incrementally maintained summary is checked against a from-scratch
// rescan within 1e-9.
func runSummaryCache(cfg Config) ([]*Table, error) {
	const dims = 16
	out := &Table{
		ID:    "a5",
		Title: fmt.Sprintf("Ablation: incremental summary cache, model suite build at d=%d (secs)", dims),
		Header: []string{"n x 1000", "cold (scan+build)", "warm (cache+build)", "incr (+1% rows, cache+build)",
			"speedup cold/warm"},
		Note: "warm and incremental builds perform zero partition scans (asserted via ScannedRows); " +
			"appends are folded into the cached n,L,Q at insert time and verified against a rescan to 1e-9",
	}
	cols := sqlgen.Dims(dims)
	for _, nk := range []int{200, 400, 800} {
		d, cleanup, err := newDB(cfg)
		if err != nil {
			return nil, err
		}
		n := cfg.rows(nk)
		if err := loadX(d, cfg, n, dims); err != nil {
			cleanup()
			return nil, err
		}
		tab, err := d.Table("X")
		if err != nil {
			cleanup()
			return nil, err
		}
		ctx := cfg.ctx()
		build := func() error {
			s, _, err := d.SummaryNLQ(ctx, "X", cols, core.Triangular)
			if err != nil {
				return err
			}
			return buildAllModels(s)
		}

		// Cold: every repetition invalidates first, so each one pays
		// the rebuild scan.
		cold, err := timeIt(cfg, func() error {
			d.InvalidateSummaries("X")
			return build()
		})
		if err != nil {
			cleanup()
			return nil, err
		}
		// Warm: the last cold run installed the entry; assert no scans.
		tab.ResetScannedRows()
		warm, err := timeIt(cfg, build)
		if err != nil {
			cleanup()
			return nil, err
		}
		if got := tab.ScannedRows(); got != 0 {
			cleanup()
			return nil, fmt.Errorf("a5: warm build scanned %d rows, want 0", got)
		}

		// Append 1% more rows through the insert path, then build warm
		// again: the appends were delta-merged at write time.
		if err := appendRows(d, cfg, n, n/100+1, dims); err != nil {
			cleanup()
			return nil, err
		}
		tab.ResetScannedRows()
		incr, err := timeIt(cfg, build)
		if err != nil {
			cleanup()
			return nil, err
		}
		if got := tab.ScannedRows(); got != 0 {
			cleanup()
			return nil, fmt.Errorf("a5: incremental build scanned %d rows, want 0", got)
		}

		// Verify the incrementally maintained summary against a
		// from-scratch rescan.
		s, _, err := d.SummaryNLQ(ctx, "X", cols, core.Triangular)
		if err != nil {
			cleanup()
			return nil, err
		}
		d.InvalidateSummaries("X")
		ref, _, err := d.SummaryNLQ(ctx, "X", cols, core.Triangular)
		if err != nil {
			cleanup()
			return nil, err
		}
		if err := nlqClose(s, ref, 1e-9); err != nil {
			cleanup()
			return nil, fmt.Errorf("a5: incremental summary diverged from rescan: %w", err)
		}

		speedup := "-"
		if w := warm.Seconds(); w > 0 {
			speedup = fmt.Sprintf("%.0fx", cold.Seconds()/w)
		}
		out.Rows = append(out.Rows, []string{itoa(nk), secs(cold), secs(warm), secs(incr), speedup})
		cleanup()
	}
	return []*Table{out}, nil
}

// appendRows inserts extra synthetic rows (ids continuing after n)
// through the regular insert path in small batches.
func appendRows(d *db.DB, cfg Config, n, extra, dims int) error {
	t, err := d.Table("X")
	if err != nil {
		return err
	}
	batch := make([]sqltypes.Row, 0, 256)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := t.Insert(batch...)
		batch = batch[:0]
		return err
	}
	err = synth.Stream(synth.Config{N: extra, D: dims, Seed: cfg.Seed + 1}, func(i int64, x []float64) error {
		row := make(sqltypes.Row, 1+dims)
		row[0] = sqltypes.NewBigInt(int64(n) + i)
		for a, v := range x {
			row[1+a] = sqltypes.NewDouble(v)
		}
		batch = append(batch, row)
		if len(batch) == cap(batch) {
			return flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	return flush()
}

// nlqClose compares two summaries within relative tolerance.
func nlqClose(a, b *core.NLQ, tol float64) error {
	if a.N != b.N {
		return fmt.Errorf("n: %g vs %g", a.N, b.N)
	}
	close := func(x, y float64) bool {
		return math.Abs(x-y) <= tol*math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
	}
	for i := 0; i < a.D; i++ {
		if !close(a.L[i], b.L[i]) {
			return fmt.Errorf("L[%d]: %g vs %g", i, a.L[i], b.L[i])
		}
		for j := 0; j < a.D; j++ {
			if !close(a.QAt(i, j), b.QAt(i, j)) {
				return fmt.Errorf("Q[%d,%d]: %g vs %g", i, j, a.QAt(i, j), b.QAt(i, j))
			}
		}
	}
	return nil
}
