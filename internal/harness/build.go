package harness

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/engine/db"
	"repro/internal/extern"
	"repro/internal/nlqudf"
	"repro/internal/odbcsim"
	"repro/internal/sqlgen"
)

// runSQLNLQ executes the long SQL query and decodes the result row
// into an NLQ (the client-side step TWM performs before the model
// math).
func runSQLNLQ(d *db.DB, dims int, mt core.MatrixType) (*core.NLQ, error) {
	res, err := d.Exec(sqlgen.NLQQuery("X", sqlgen.Dims(dims), mt))
	if err != nil {
		return nil, err
	}
	row := res.Rows[0]
	s := core.MustNLQ(dims, mt)
	if s.N, err = row[0].AsFloat(); err != nil {
		return nil, fmt.Errorf("harness: bad N in SQL summary: %w", err)
	}
	for a := 0; a < dims; a++ {
		if !row[1+a].IsNull() {
			if s.L[a], err = row[1+a].AsFloat(); err != nil {
				return nil, fmt.Errorf("harness: bad L[%d] in SQL summary: %w", a, err)
			}
		}
	}
	for a := 0; a < dims; a++ {
		for c := 0; c < dims; c++ {
			v := row[1+dims+a*dims+c]
			if v.IsNull() {
				continue
			}
			keep := (mt == core.Full) || (mt == core.Triangular && c <= a) || (mt == core.Diagonal && a == c)
			if keep {
				if s.Q[a*dims+c], err = v.AsFloat(); err != nil {
					return nil, fmt.Errorf("harness: bad Q[%d,%d] in SQL summary: %w", a, c, err)
				}
			}
		}
	}
	return s, nil
}

// runUDFNLQ executes the aggregate UDF and unpacks its string result.
func runUDFNLQ(d *db.DB, dims int, mt core.MatrixType, style sqlgen.PassStyle) (*core.NLQ, error) {
	res, err := d.Exec(sqlgen.NLQUDFQuery("X", sqlgen.Dims(dims), mt, style))
	if err != nil {
		return nil, err
	}
	v, err := res.Value()
	if err != nil {
		return nil, err
	}
	return core.Unpack(v.Str())
}

// exportX exports table X to a file through the ODBC simulator,
// returning the path and the export statistics.
func exportX(d *db.DB, cfg Config, dir string) (string, odbcsim.Stats, error) {
	t, err := d.Table("X")
	if err != nil {
		return "", odbcsim.Stats{}, err
	}
	path := filepath.Join(dir, "export.csv")
	f, err := os.Create(path)
	if err != nil {
		return "", odbcsim.Stats{}, err
	}
	st, err := odbcsim.Export(t, f, cfg.ODBC)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return path, st, err
}

// buildAllModels performs the client-side model math of Table 1 from
// the summaries: correlation, PCA (k=16 capped at d) and linear
// regression treating the last dimension as Y.
func buildAllModels(s *core.NLQ) error {
	if _, err := core.BuildCorrelation(s); err != nil {
		return err
	}
	k := 16
	if k > s.D-1 {
		k = s.D - 1
	}
	if _, err := core.BuildPCA(s, k, core.CorrelationBasis); err != nil {
		return err
	}
	_, err := core.BuildLinReg(s)
	return err
}

// runTable1 reproduces Table 1: total time (summaries + model math) at
// d=32 for n = 100k..1600k, comparing C++ (on a pre-exported file,
// export excluded as in the paper), SQL and the aggregate UDF. The
// correlation and regression columns measure the shared n,L,Q pass
// plus each model's own math.
func runTable1(cfg Config) ([]*Table, error) {
	const dims = 32
	d, cleanup, err := newDB(cfg)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	exportDir, err := os.MkdirTemp("", "statsudf-export-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(exportDir)

	t := &Table{
		ID:    "t1",
		Title: fmt.Sprintf("Total time to build models at d=%d (secs)", dims),
		Header: []string{"n x1000(scaled)", "corr C++", "corr SQL", "corr UDF",
			"pca/linreg C++", "pca/linreg SQL", "pca/linreg UDF"},
		Note: "C++ runs single-threaded on a pre-exported file (export time excluded, as in the paper); SQL/UDF run in the 20-way parallel engine.",
	}
	for _, nk := range []int{100, 200, 400, 800, 1600} {
		n := cfg.rows(nk)
		if err := loadX(d, cfg, n, dims); err != nil {
			return nil, err
		}
		// Pre-export without throttling: Table 1 excludes export time.
		plainODBC := cfg
		plainODBC.ODBC.TimeScale = 0
		path, _, err := exportX(d, plainODBC, exportDir)
		if err != nil {
			return nil, err
		}

		type cell struct {
			corr, full Timing
		}
		var cpp, sql, udf cell
		// C++: single-threaded scan of the file + model math.
		cpp.corr, err = timeIt(cfg, func() error {
			s, err := extern.ComputeNLQ(mustOpen(path), dims, extern.Options{SkipLeadingID: true, MatrixType: core.Triangular})
			if err != nil {
				return err
			}
			_, err = core.BuildCorrelation(s)
			return err
		})
		if err != nil {
			return nil, err
		}
		cpp.full, err = timeIt(cfg, func() error {
			s, err := extern.ComputeNLQ(mustOpen(path), dims, extern.Options{SkipLeadingID: true, MatrixType: core.Triangular})
			if err != nil {
				return err
			}
			return buildAllModels(s)
		})
		if err != nil {
			return nil, err
		}
		// SQL: long query + model math.
		sql.corr, err = timeIt(cfg, func() error {
			s, err := runSQLNLQ(d, dims, core.Triangular)
			if err != nil {
				return err
			}
			_, err = core.BuildCorrelation(s)
			return err
		})
		if err != nil {
			return nil, err
		}
		sql.full, err = timeIt(cfg, func() error {
			s, err := runSQLNLQ(d, dims, core.Triangular)
			if err != nil {
				return err
			}
			return buildAllModels(s)
		})
		if err != nil {
			return nil, err
		}
		// UDF: aggregate UDF + model math.
		udf.corr, err = timeIt(cfg, func() error {
			s, err := runUDFNLQ(d, dims, core.Triangular, sqlgen.ListStyle)
			if err != nil {
				return err
			}
			_, err = core.BuildCorrelation(s)
			return err
		})
		if err != nil {
			return nil, err
		}
		udf.full, err = timeIt(cfg, func() error {
			s, err := runUDFNLQ(d, dims, core.Triangular, sqlgen.ListStyle)
			if err != nil {
				return err
			}
			return buildAllModels(s)
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d (%d rows)", nk, n),
			secs(cpp.corr), secs(sql.corr), secs(udf.corr),
			secs(cpp.full), secs(sql.full), secs(udf.full),
		})
	}
	return []*Table{t}, nil
}

// mustOpen re-opens the exported file per run; the external analyzer
// re-reads its input from disk each time, like the table scans.
func mustOpen(path string) *os.File {
	f, err := os.Open(path)
	if err != nil {
		panic(err) // file was created moments ago by the same process
	}
	return f
}

// runTable2 reproduces Table 2: time for n,L,Q at n ∈ {100k,200k} and
// d ∈ {8..64} for C++/SQL/UDF, plus the modeled ODBC export time.
func runTable2(cfg Config) ([]*Table, error) {
	d, cleanup, err := newDB(cfg)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	exportDir, err := os.MkdirTemp("", "statsudf-export-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(exportDir)

	t := &Table{
		ID:     "t2",
		Title:  "Time to compute n, L, Q and time to export X with ODBC (secs)",
		Header: []string{"n x1000(scaled)", "d", "C++", "SQL", "UDF", "ODBC(modeled)"},
		Note:   "ODBC column is the modeled 100 Mbps channel time for the full export (the paper's dominant cost); the other columns are measured.",
	}
	for _, nk := range []int{100, 200} {
		for _, dims := range []int{8, 16, 32, 64} {
			n := cfg.rows(nk)
			if err := loadX(d, cfg, n, dims); err != nil {
				return nil, err
			}
			path, odbcStats, err := exportX(d, cfg, exportDir)
			if err != nil {
				return nil, err
			}
			cppT, err := timeIt(cfg, func() error {
				f := mustOpen(path)
				defer f.Close()
				_, err := extern.ComputeNLQ(f, dims, extern.Options{SkipLeadingID: true, MatrixType: core.Triangular})
				return err
			})
			if err != nil {
				return nil, err
			}
			sqlT, err := timeIt(cfg, func() error {
				_, err := runSQLNLQ(d, dims, core.Triangular)
				return err
			})
			if err != nil {
				return nil, err
			}
			udfT, err := timeIt(cfg, func() error {
				_, err := runUDFNLQ(d, dims, core.Triangular, sqlgen.ListStyle)
				return err
			})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d (%d rows)", nk, n), itoa(dims),
				secs(cppT), secs(sqlT), secs(udfT),
				secs(odbcStats.Modeled),
			})
		}
	}
	return []*Table{t}, nil
}

// runTable3 reproduces Table 3: model construction time when n, L, Q
// are already available — independent of n, growing only with d.
func runTable3(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:     "t3",
		Title:  "Time to build models from n, L, Q (secs); independent of n",
		Header: []string{"d", "linear correlation", "linear regression", "PCA", "clustering"},
		Note:   "clustering column is the C/R/W finalization from k=16 per-cluster summaries; all model math runs on d×d matrices only.",
	}
	for _, dims := range []int{4, 8, 16, 32, 64} {
		// Build the summaries once from a small representative sample —
		// the point of the experiment is that model math never touches X.
		d, cleanup, err := newDB(cfg)
		if err != nil {
			return nil, err
		}
		n := cfg.rows(100)
		if n < 4*dims {
			n = 4 * dims // regression needs n > d+1 even at tiny scales
		}
		if err := loadX(d, cfg, n, dims); err != nil {
			cleanup()
			return nil, err
		}
		s, err := runUDFNLQ(d, dims, core.Triangular, sqlgen.ListStyle)
		if err != nil {
			cleanup()
			return nil, err
		}
		// Per-cluster summaries for the clustering column.
		groups, err := runGroupedNLQ(d, dims, 16)
		cleanup()
		if err != nil {
			return nil, err
		}

		corrT, err := timeIt(cfg, func() error {
			_, err := core.BuildCorrelation(s)
			return err
		})
		if err != nil {
			return nil, err
		}
		regT, err := timeIt(cfg, func() error {
			_, err := core.BuildLinReg(s)
			return err
		})
		if err != nil {
			return nil, err
		}
		k := 16
		if k > dims-1 {
			k = dims - 1
		}
		pcaT, err := timeIt(cfg, func() error {
			_, err := core.BuildPCA(s, k, core.CorrelationBasis)
			return err
		})
		if err != nil {
			return nil, err
		}
		clusT, err := timeIt(cfg, func() error {
			return finalizeClusters(groups, dims)
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			itoa(dims), secs(corrT), secs(regT), secs(pcaT), secs(clusT),
		})
	}
	return []*Table{t}, nil
}

// runGroupedNLQ computes k per-group diagonal summaries with the
// GROUP BY UDF query.
func runGroupedNLQ(d *db.DB, dims, k int) ([]*core.NLQ, error) {
	sql := sqlgen.NLQUDFGroupQuery("X", sqlgen.Dims(dims), core.Diagonal, sqlgen.ListStyle, fmt.Sprintf("i %% %d", k))
	res, err := d.Exec(sql)
	if err != nil {
		return nil, err
	}
	out := make([]*core.NLQ, 0, len(res.Rows))
	for _, row := range res.Rows {
		s, err := core.Unpack(row[1].Str())
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// finalizeClusters computes C, R, W from per-cluster summaries — the
// paper's clustering "model build" step once n, L, Q are available.
func finalizeClusters(groups []*core.NLQ, dims int) error {
	var n float64
	for _, g := range groups {
		n += g.N
	}
	if n == 0 {
		return fmt.Errorf("harness: no cluster members")
	}
	for _, g := range groups {
		if g.N == 0 {
			continue
		}
		if _, err := g.Mean(); err != nil {
			return err
		}
		if _, err := g.Variances(); err != nil {
			return err
		}
		_ = g.N / n // weight
	}
	return nil
}

// runTable6 reproduces Table 6: d ≥ 64 via blocked UDF calls in one
// synchronized scan; total time is proportional to the number of calls.
func runTable6(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:     "t6",
		Title:  "Time growth for high d via blocked UDF calls (secs)",
		Header: []string{"n x1000(scaled)", "d", "# of UDF calls", "total time"},
		Note:   "lower-triangle block plan: (b²+b)/2 calls for b = d/64 (the paper reports the full-grid count b²); one synchronized scan computes all blocks.",
	}
	for _, dims := range []int{64, 128, 256, 512, 1024} {
		d, cleanup, err := newDB(cfg)
		if err != nil {
			return nil, err
		}
		n := cfg.rows(100)
		// Very wide tables get expensive quickly; scale rows down
		// further for d > 256 to keep default runs responsive while
		// preserving the calls-vs-time proportionality.
		if dims > 256 {
			n /= 4
			if n < 20 {
				n = 20
			}
		}
		if err := loadX(d, cfg, n, dims); err != nil {
			cleanup()
			return nil, err
		}
		plan, err := core.PlanBlocks(dims, core.MaxD)
		if err != nil {
			cleanup()
			return nil, err
		}
		sql := sqlgen.NLQBlockQuery("X", sqlgen.Dims(dims), plan)
		elapsed, err := timeIt(cfg, func() error {
			res, err := d.Exec(sql)
			if err != nil {
				return err
			}
			parts := make([]*core.BlockResult, plan.Calls())
			for i, v := range res.Rows[0] {
				_, r, err := nlqudf.UnpackBlock(v.Str())
				if err != nil {
					return err
				}
				parts[i] = r
			}
			_, err = plan.Assemble(parts)
			return err
		})
		cleanup()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("100 (%d rows)", n), itoa(dims), itoa(plan.Calls()), secs(elapsed),
		})
	}
	return []*Table{t}, nil
}
