// Package harness regenerates every table and figure of the paper's
// evaluation (§4). Each experiment builds its workload with the synth
// generator, runs the competing implementations — the long SQL query,
// the aggregate/scalar UDFs, and the external single-threaded analyzer
// on ODBC-exported files — and prints the same rows/series the paper
// reports, with measured seconds in place of the paper's.
//
// Absolute times differ from the 2007 hardware by orders of magnitude;
// the reproduction targets the shapes: who wins, by what factor, and
// where the crossovers fall. The Scale knob shrinks the row counts
// proportionally (Scale=1 is the paper's full size).
package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/engine/db"
	"repro/internal/nlqudf"
	"repro/internal/odbcsim"
	"repro/internal/score"
	"repro/internal/synth"
)

// Config controls an experiment run.
type Config struct {
	// Ctx, when set, cancels the run: RunAll stops between experiments
	// and repetitions, and streamed scoring scans abort mid-statement.
	// The bench command wires SIGINT/SIGTERM to it for graceful
	// shutdown. Nil means context.Background().
	Ctx context.Context
	// Scale multiplies the paper's row counts (1.0 = full size,
	// 0.01 = 1% for CI). Default 0.05.
	Scale float64
	// Partitions is the engine's parallelism; the paper's system had
	// 20 threads. Default 20.
	Partitions int
	// Dir holds the on-disk tables and export files. Empty uses a
	// temporary directory (removed afterwards).
	Dir string
	// ODBC models the export channel for the external comparator.
	ODBC odbcsim.Config
	// Runs averages each measurement over this many repetitions
	// (the paper used five). Default 1.
	Runs int
	// Out receives the rendered tables. Default os.Stdout.
	Out io.Writer
	// Seed makes workloads reproducible. Default 2007.
	Seed int64
	// JSONDir, when set, additionally writes each experiment's tables
	// as BENCH_<id>.json into the directory (created if missing) — the
	// machine-readable artifact CI uploads.
	JSONDir string
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.Partitions <= 0 {
		c.Partitions = 20
	}
	if c.Runs <= 0 {
		c.Runs = 1
	}
	if c.Out == nil {
		c.Out = os.Stdout
	}
	if c.Seed == 0 {
		c.Seed = 2007
	}
	return c
}

// ctx returns the run's cancellation context.
func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// rows scales one of the paper's "n × 1000" sizes.
func (c Config) rows(nThousand int) int {
	n := int(float64(nThousand) * 1000 * c.Scale)
	if n < 20 {
		n = 20
	}
	return n
}

// Table is one rendered result table.
type Table struct {
	ID     string     `json:"id"` // experiment id, e.g. "t1", "f3"
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Note   string     `json:"note,omitempty"`
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s: %s ==\n", t.ID, t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	printRow(tw, t.Header)
	for _, r := range t.Rows {
		printRow(tw, r)
	}
	tw.Flush()
	if t.Note != "" {
		fmt.Fprintf(w, "note: %s\n", t.Note)
	}
}

func printRow(w io.Writer, cells []string) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(w, "\t")
		}
		fmt.Fprint(w, c)
	}
	fmt.Fprintln(w)
}

// Experiment regenerates one paper table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) ([]*Table, error)
}

// All returns the experiments in paper order, followed by the
// repository's extra ablations.
func All() []Experiment {
	return []Experiment{
		{"t1", "Total time to build models at d=32 (Table 1)", runTable1},
		{"t2", "Time for n,L,Q with aggregate UDF vs C++/SQL + ODBC export (Table 2)", runTable2},
		{"t3", "Time to build models given n,L,Q; independent of n (Table 3)", runTable3},
		{"t4", "Time to score X at d=32, k=16 (Table 4)", runTable4},
		{"t5", "GROUP BY aggregate UDF varying groups k at d=32 (Table 5)", runTable5},
		{"t6", "Time growth for high d via blocked UDF calls (Table 6)", runTable6},
		{"f1", "SQL vs aggregate UDF varying n (Figure 1)", runFigure1},
		{"f2", "SQL vs aggregate UDF varying d (Figure 2)", runFigure2},
		{"f3", "UDF parameter passing style: string vs list (Figure 3)", runFigure3},
		{"f4", "Aggregate UDF matrix optimization: diag/triang/full (Figure 4)", runFigure4},
		{"f5", "Aggregate UDF time varying n and d (Figure 5)", runFigure5},
		{"f6", "Scalar UDF scoring time varying n (Figure 6)", runFigure6},
		{"a1", "Ablation: partial-aggregation parallelism (partitions 1/4/20)", runAblatePartitions},
		{"a2", "Ablation: one long SQL query vs per-cell statements (§3.4)", runAblateSQLStyle},
		{"a3", "Executor statistics: scan volume, partition skew, phase times", runExecutorStats},
		{"a4", "Scoring delivery path: in-engine vs wire-protocol client vs ODBC export", runServingScoring},
		{"a5", "Ablation: incremental summary cache: cold scan vs warm cache vs incremental model builds", runSummaryCache},
		{"a6", "High-QPS point scoring over the wire: ad-hoc SQL vs plan cache vs PREPARE/EXECUTE", runPreparedQPS},
		{"a7", "Distributed scale-out: sharded n,L,Q builds through the cluster coordinator vs one process", runClusterScale},
		{"a8", "Ablation: row vs columnar scan path: cold n,L,Q builds and vectorized filter scans", runColumnarScan},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes the requested experiment ids (nil = all) and prints
// each table as it completes.
func RunAll(cfg Config, ids []string) error {
	cfg = cfg.withDefaults()
	exps := All()
	if len(ids) > 0 {
		var sel []Experiment
		for _, id := range ids {
			e, ok := ByID(id)
			if !ok {
				known := make([]string, 0, len(exps))
				for _, x := range exps {
					known = append(known, x.ID)
				}
				sort.Strings(known)
				return fmt.Errorf("harness: unknown experiment %q (known: %v)", id, known)
			}
			sel = append(sel, e)
		}
		exps = sel
	}
	for _, e := range exps {
		if err := cfg.ctx().Err(); err != nil {
			return fmt.Errorf("harness: run cancelled before %s: %w", e.ID, err)
		}
		start := time.Now()
		tables, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("harness: %s: %w", e.ID, err)
		}
		for _, t := range tables {
			t.Fprint(cfg.Out)
		}
		if cfg.JSONDir != "" {
			if err := writeJSON(cfg, e, tables, time.Since(start)); err != nil {
				return fmt.Errorf("harness: %s: %w", e.ID, err)
			}
		}
		fmt.Fprintf(cfg.Out, "[%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// writeJSON saves one experiment's rendered tables as
// <JSONDir>/BENCH_<id>.json.
func writeJSON(cfg Config, e Experiment, tables []*Table, elapsed time.Duration) error {
	if err := os.MkdirAll(cfg.JSONDir, 0o755); err != nil {
		return err
	}
	doc := struct {
		ID      string   `json:"id"`
		Title   string   `json:"title"`
		Scale   float64  `json:"scale"`
		Runs    int      `json:"runs"`
		Seconds float64  `json:"seconds"`
		Tables  []*Table `json:"tables"`
	}{e.ID, e.Title, cfg.Scale, cfg.Runs, elapsed.Seconds(), tables}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(cfg.JSONDir, "BENCH_"+e.ID+".json"), append(b, '\n'), 0o644)
}

// newDB opens an on-disk database with the paper's parallelism and the
// UDFs installed; the caller must call the returned cleanup.
func newDB(cfg Config) (*db.DB, func(), error) {
	return newDBMode(cfg, false)
}

// newDBMode is newDB with the scan mode explicit; the a8 ablation
// opens one engine per mode over identical data.
func newDBMode(cfg Config, columnar bool) (*db.DB, func(), error) {
	dir := cfg.Dir
	cleanup := func() {}
	if dir == "" {
		tmp, err := os.MkdirTemp("", "statsudf-bench-*")
		if err != nil {
			return nil, nil, err
		}
		dir = tmp
		cleanup = func() { os.RemoveAll(tmp) }
	}
	d := db.Open(db.Options{Dir: dir, Partitions: cfg.Partitions, Columnar: columnar})
	if err := nlqudf.Register(d); err != nil {
		cleanup()
		return nil, nil, err
	}
	if err := score.Register(d); err != nil {
		cleanup()
		return nil, nil, err
	}
	return d, cleanup, nil
}

// loadX loads the standard mixture workload into table X.
func loadX(d *db.DB, cfg Config, n, dims int) error {
	return synth.LoadTable(d, "X", synth.Config{N: n, D: dims, Seed: cfg.Seed})
}

// Timing records every repetition of one measurement, so tables can
// report spread instead of collapsing to a single averaged number.
type Timing struct {
	Runs []time.Duration
}

// Mean is the average run duration (0 for an empty Timing).
func (t Timing) Mean() time.Duration {
	if len(t.Runs) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range t.Runs {
		total += d
	}
	return total / time.Duration(len(t.Runs))
}

// Min is the fastest run (0 for an empty Timing).
func (t Timing) Min() time.Duration {
	var m time.Duration
	for i, d := range t.Runs {
		if i == 0 || d < m {
			m = d
		}
	}
	return m
}

// Max is the slowest run.
func (t Timing) Max() time.Duration {
	var m time.Duration
	for _, d := range t.Runs {
		if d > m {
			m = d
		}
	}
	return m
}

// Seconds is the mean in seconds — the number figure series plot.
func (t Timing) Seconds() float64 { return t.Mean().Seconds() }

// String renders the mean, with the min..max spread when the
// measurement was repeated.
func (t Timing) String() string {
	if len(t.Runs) <= 1 {
		return fmt.Sprintf("%.4f", t.Seconds())
	}
	return fmt.Sprintf("%.4f [%.4f..%.4f]", t.Seconds(), t.Min().Seconds(), t.Max().Seconds())
}

// timeIt measures fn over cfg.Runs repetitions, recording each run.
func timeIt(cfg Config, fn func() error) (Timing, error) {
	t := Timing{Runs: make([]time.Duration, 0, cfg.Runs)}
	for r := 0; r < cfg.Runs; r++ {
		if err := cfg.ctx().Err(); err != nil {
			return Timing{}, err
		}
		start := time.Now()
		if err := fn(); err != nil {
			return Timing{}, err
		}
		t.Runs = append(t.Runs, time.Since(start))
	}
	return t, nil
}

// secs renders a measurement in seconds the way the paper's tables do,
// with enough precision for modern-hardware magnitudes. Timings render
// their min..max spread when repeated; plain durations render the
// bare value.
func secs(v interface{ Seconds() float64 }) string {
	if t, ok := v.(Timing); ok {
		return t.String()
	}
	return fmt.Sprintf("%.4f", v.Seconds())
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
