package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine/db"
	"repro/internal/engine/sqltypes"
	"repro/internal/score"
	"repro/internal/sqlgen"
	"repro/internal/synth"
)

// prepareScoringModels loads a regression workload and trains + stores
// the three scorable models (BETA, MU/LAMBDA, C/R/W); model training
// is not part of the timed scoring runs.
func prepareScoringModels(d *db.DB, cfg Config, n, dims, k int) error {
	// Regression data: planted linear model over the mixture points.
	beta := make([]float64, dims)
	for a := range beta {
		beta[a] = float64(a%5) - 2
	}
	if err := synth.LoadRegressionTable(d, "X", synth.Config{N: n, D: dims, Seed: cfg.Seed}, 10, beta, 5); err != nil {
		return err
	}
	// Train from the augmented summaries via the UDF.
	res, err := d.Exec(fmt.Sprintf("SELECT %s FROM X",
		nlqCallWithY(dims)))
	if err != nil {
		return err
	}
	v, err := res.Value()
	if err != nil {
		return err
	}
	aug, err := core.Unpack(v.Str())
	if err != nil {
		return err
	}
	lr, err := core.BuildLinReg(aug)
	if err != nil {
		return err
	}
	if err := score.SaveLinReg(d, "BETA", lr); err != nil {
		return err
	}
	// PCA on the d predictor dimensions (sub-summaries via a fresh UDF run).
	res, err = d.Exec(sqlgen.NLQUDFQuery("X", sqlgen.Dims(dims), core.Triangular, sqlgen.ListStyle))
	if err != nil {
		return err
	}
	v, err = res.Value()
	if err != nil {
		return err
	}
	s, err := core.Unpack(v.Str())
	if err != nil {
		return err
	}
	pca, err := core.BuildPCA(s, min(k, dims-1), core.CorrelationBasis)
	if err != nil {
		return err
	}
	if err := score.SavePCA(d, "MU", "LAMBDA", pca); err != nil {
		return err
	}
	// K-means from the grouped summaries: one incremental pass is
	// enough for scoring benchmarks (the model only supplies C).
	km, err := kmeansFromTable(d, dims, k)
	if err != nil {
		return err
	}
	return score.SaveKMeans(d, "C", "R", "W", km)
}

// nlqCallWithY builds the augmented UDF call over (X1..Xd, Y).
func nlqCallWithY(dims int) string {
	call := fmt.Sprintf("nlq_list(%d, 'triang'", dims+1)
	for a := 1; a <= dims; a++ {
		call += fmt.Sprintf(", X%d", a)
	}
	return call + ", Y)"
}

// kmeansFromTable runs the incremental one-scan K-means over table X.
func kmeansFromTable(d *db.DB, dims, k int) (*core.KMeansModel, error) {
	src, err := newTableSource(d, "X", dims)
	if err != nil {
		return nil, err
	}
	return core.BuildKMeans(src, k, core.KMeansOptions{Seed: 7, Incremental: true})
}

// tableSource adapts an engine table to core.Source, streaming the
// X1..Xd columns (skipping the leading id and trailing extras).
type tableSource struct {
	d     *db.DB
	table string
	dims  int
}

func newTableSource(d *db.DB, table string, dims int) (*tableSource, error) {
	if _, err := d.Table(table); err != nil {
		return nil, err
	}
	return &tableSource{d: d, table: table, dims: dims}, nil
}

func (s *tableSource) Dims() int { return s.dims }

func (s *tableSource) Scan(fn func(x []float64) error) error {
	t, err := s.d.Table(s.table)
	if err != nil {
		return err
	}
	schema := t.Schema()
	idx := make([]int, s.dims)
	for a := 0; a < s.dims; a++ {
		i := schema.Index(fmt.Sprintf("X%d", a+1))
		if i < 0 {
			return fmt.Errorf("harness: table %s lacks column X%d", s.table, a+1)
		}
		idx[a] = i
	}
	x := make([]float64, s.dims)
	return t.Scan(func(r sqltypes.Row) error {
		for a, i := range idx {
			f, ok := r[i].Float()
			if !ok {
				return fmt.Errorf("harness: non-numeric value in %s.X%d", s.table, a+1)
			}
			x[a] = f
		}
		return fn(x)
	})
}

// discard streams query rows without retaining them; scoring
// benchmarks measure the scan+compute cost, not materialization. The
// run context cancels the scan mid-statement (graceful bench shutdown).
func discard(cfg Config, d *db.DB, sql string) error {
	_, _, err := d.QueryStreamContext(cfg.ctx(), sql, func(sqltypes.Row) error { return nil })
	return err
}

// runTable4 reproduces Table 4: scoring time at d=32, k=16 for
// regression, PCA and clustering, SQL expressions vs scalar UDFs.
func runTable4(cfg Config) ([]*Table, error) {
	const dims, k = 32, 16
	t := &Table{
		ID:     "t4",
		Title:  fmt.Sprintf("Time to score X at d=%d and k=%d (secs)", dims, k),
		Header: []string{"n x1000(scaled)", "technique", "SQL", "UDF"},
		Note:   "clustering SQL is the paper's two-scan plan (distance table + argmin CASE); everything else is one scan.",
	}
	d, cleanup, err := newDB(cfg)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	dims32 := sqlgen.Dims(dims)
	for _, nk := range []int{100, 200, 400, 800} {
		n := cfg.rows(nk)
		if err := prepareScoringModels(d, cfg, n, dims, k); err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%d (%d rows)", nk, n)

		regSQL, err := timeIt(cfg, func() error { return discard(cfg, d, sqlgen.RegScoreSQL("X", "BETA", "i", dims32)) })
		if err != nil {
			return nil, err
		}
		regUDF, err := timeIt(cfg, func() error { return discard(cfg, d, sqlgen.RegScoreUDF("X", "BETA", "i", dims32)) })
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{label, "linear regression", secs(regSQL), secs(regUDF)})

		pcaSQL, err := timeIt(cfg, func() error { return discard(cfg, d, sqlgen.PCAScoreSQL("X", "MU", "LAMBDA", "i", dims32, k)) })
		if err != nil {
			return nil, err
		}
		pcaUDF, err := timeIt(cfg, func() error { return discard(cfg, d, sqlgen.PCAScoreUDF("X", "MU", "LAMBDA", "i", dims32, k)) })
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{label, "PCA", secs(pcaSQL), secs(pcaUDF)})

		clusSQL, err := timeIt(cfg, func() error { return runClusterScoreSQL(cfg, d, dims32, k) })
		if err != nil {
			return nil, err
		}
		clusUDF, err := timeIt(cfg, func() error { return discard(cfg, d, sqlgen.ClusterScoreUDF("X", "C", "i", dims32, k)) })
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{label, "clustering", secs(clusSQL), secs(clusUDF)})
	}
	return []*Table{t}, nil
}

// runClusterScoreSQL executes the paper's two-scan SQL clustering
// scoring plan end to end.
func runClusterScoreSQL(cfg Config, d *db.DB, dims []string, k int) error {
	stmts := sqlgen.ClusterScoreSQL("X", "C", "XD", "i", dims, k)
	for _, s := range stmts[:len(stmts)-1] {
		if _, err := d.Exec(s); err != nil {
			return err
		}
	}
	return discard(cfg, d, stmts[len(stmts)-1])
}

// runFigure6 reproduces Figure 6: scoring UDF time vs n for the three
// techniques at d=32, k=16 — all three scale linearly, with clustering
// the most demanding, then PCA, then regression.
func runFigure6(cfg Config) ([]*Table, error) {
	const dims, k = 32, 16
	t := &Table{
		ID:     "f6",
		Title:  fmt.Sprintf("Scalar UDF scoring time varying n (d=%d, k=%d; secs)", dims, k),
		Header: []string{"n x1000(scaled)", "linear regression", "PCA", "clustering"},
	}
	d, cleanup, err := newDB(cfg)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	dims32 := sqlgen.Dims(dims)
	for _, nk := range []int{100, 200, 400, 800, 1600} {
		n := cfg.rows(nk)
		if err := prepareScoringModels(d, cfg, n, dims, k); err != nil {
			return nil, err
		}
		var reg, pca, clus Timing
		if reg, err = timeIt(cfg, func() error { return discard(cfg, d, sqlgen.RegScoreUDF("X", "BETA", "i", dims32)) }); err != nil {
			return nil, err
		}
		if pca, err = timeIt(cfg, func() error { return discard(cfg, d, sqlgen.PCAScoreUDF("X", "MU", "LAMBDA", "i", dims32, k)) }); err != nil {
			return nil, err
		}
		if clus, err = timeIt(cfg, func() error { return discard(cfg, d, sqlgen.ClusterScoreUDF("X", "C", "i", dims32, k)) }); err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d (%d rows)", nk, n), secs(reg), secs(pca), secs(clus),
		})
	}
	return []*Table{t}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
