package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sqlgen"
)

// measureNLQ loads X(n, dims) and times one n,L,Q computation through
// the chosen implementation.
func measureNLQ(cfg Config, n, dims int, mt core.MatrixType, impl string, style sqlgen.PassStyle) (float64, error) {
	d, cleanup, err := newDB(cfg)
	if err != nil {
		return 0, err
	}
	defer cleanup()
	if err := loadX(d, cfg, n, dims); err != nil {
		return 0, err
	}
	elapsed, err := timeIt(cfg, func() error {
		switch impl {
		case "sql":
			_, err := runSQLNLQ(d, dims, mt)
			return err
		case "udf":
			_, err := runUDFNLQ(d, dims, mt, style)
			return err
		default:
			return fmt.Errorf("harness: unknown implementation %q", impl)
		}
	})
	if err != nil {
		return 0, err
	}
	return elapsed.Seconds(), nil
}

// runFigure1 reproduces Figure 1: SQL vs aggregate UDF as n grows, at
// d ∈ {8, 16, 32, 64}, triangular matrix.
func runFigure1(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:     "f1",
		Title:  "SQL vs aggregate UDF varying n, triangular matrix (secs)",
		Header: []string{"n x1000(scaled)", "SQL d=8", "UDF d=8", "SQL d=16", "UDF d=16", "SQL d=32", "UDF d=32", "SQL d=64", "UDF d=64"},
		Note:   "the paper's crossover: SQL competitive (even ahead) at low d, UDF clearly ahead at d=64; SQL non-linear at small n from statement parse overhead.",
	}
	for _, nk := range []int{100, 200, 400, 800, 1600} {
		n := cfg.rows(nk)
		row := []string{fmt.Sprintf("%d (%d rows)", nk, n)}
		for _, dims := range []int{8, 16, 32, 64} {
			sqlS, err := measureNLQ(cfg, n, dims, core.Triangular, "sql", sqlgen.ListStyle)
			if err != nil {
				return nil, err
			}
			udfS, err := measureNLQ(cfg, n, dims, core.Triangular, "udf", sqlgen.ListStyle)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.4f", sqlS), fmt.Sprintf("%.4f", udfS))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// runFigure2 reproduces Figure 2: SQL vs aggregate UDF as d grows, for
// n ∈ {100k, 200k, 800k, 1600k}.
func runFigure2(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:     "f2",
		Title:  "SQL vs aggregate UDF varying d, triangular matrix (secs)",
		Header: []string{"d", "SQL n=100k", "UDF n=100k", "SQL n=200k", "UDF n=200k", "SQL n=800k", "UDF n=800k", "SQL n=1600k", "UDF n=1600k"},
		Note:   "SQL grows quadratically in d (the 1+d+d² interpreted terms); the UDF is near-linear, dominated by the O(d·n) scan I/O.",
	}
	for _, dims := range []int{8, 16, 32, 48, 64} {
		row := []string{itoa(dims)}
		for _, nk := range []int{100, 200, 800, 1600} {
			n := cfg.rows(nk)
			sqlS, err := measureNLQ(cfg, n, dims, core.Triangular, "sql", sqlgen.ListStyle)
			if err != nil {
				return nil, err
			}
			udfS, err := measureNLQ(cfg, n, dims, core.Triangular, "udf", sqlgen.ListStyle)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.4f", sqlS), fmt.Sprintf("%.4f", udfS))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// runFigure3 reproduces Figure 3: parameter passing style — string vs
// list — varying n at d=8 (left plot) and varying d at n=1600k (right
// plot).
func runFigure3(cfg Config) ([]*Table, error) {
	left := &Table{
		ID:     "f3",
		Title:  "Parameter passing varying n at d=8 (secs)",
		Header: []string{"n x1000(scaled)", "string", "list"},
	}
	for _, nk := range []int{100, 200, 400, 800, 1600} {
		n := cfg.rows(nk)
		strS, err := measureNLQ(cfg, n, 8, core.Triangular, "udf", sqlgen.StringStyle)
		if err != nil {
			return nil, err
		}
		listS, err := measureNLQ(cfg, n, 8, core.Triangular, "udf", sqlgen.ListStyle)
		if err != nil {
			return nil, err
		}
		left.Rows = append(left.Rows, []string{
			fmt.Sprintf("%d (%d rows)", nk, n), fmt.Sprintf("%.4f", strS), fmt.Sprintf("%.4f", listS),
		})
	}
	right := &Table{
		ID:     "f3",
		Title:  "Parameter passing varying d at n=1600k-scaled (secs)",
		Header: []string{"d", "string", "list"},
		Note:   "the string style pays the per-row number→string→number conversion; the gap widens with d (the paper's counter-intuitive finding that conversion beats the d² arithmetic as the dominant cost).",
	}
	n := cfg.rows(1600)
	for _, dims := range []int{8, 16, 32, 48, 64} {
		strS, err := measureNLQ(cfg, n, dims, core.Triangular, "udf", sqlgen.StringStyle)
		if err != nil {
			return nil, err
		}
		listS, err := measureNLQ(cfg, n, dims, core.Triangular, "udf", sqlgen.ListStyle)
		if err != nil {
			return nil, err
		}
		right.Rows = append(right.Rows, []string{itoa(dims), fmt.Sprintf("%.4f", strS), fmt.Sprintf("%.4f", listS)})
	}
	return []*Table{left, right}, nil
}

// runFigure4 reproduces Figure 4: matrix-type optimization — diagonal
// vs triangular vs full — varying n at d=64 and varying d at n=1600k.
func runFigure4(cfg Config) ([]*Table, error) {
	left := &Table{
		ID:     "f4",
		Title:  "Matrix optimization varying n at d=64 (secs)",
		Header: []string{"n x1000(scaled)", "diag", "triang", "full"},
	}
	for _, nk := range []int{100, 200, 400, 800, 1600} {
		n := cfg.rows(nk)
		row := []string{fmt.Sprintf("%d (%d rows)", nk, n)}
		for _, mt := range []core.MatrixType{core.Diagonal, core.Triangular, core.Full} {
			s, err := measureNLQ(cfg, n, 64, mt, "udf", sqlgen.ListStyle)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.4f", s))
		}
		left.Rows = append(left.Rows, row)
	}
	right := &Table{
		ID:     "f4",
		Title:  "Matrix optimization varying d at n=1600k-scaled (secs)",
		Header: []string{"d", "diag", "triang", "full"},
		Note:   "d operations (diag) vs d(d+1)/2 (triang) vs d² (full) per row; the gap is marginal at low d and grows at d=64 — but I/O keeps all three closer than operation counts suggest.",
	}
	n := cfg.rows(1600)
	for _, dims := range []int{8, 16, 32, 48, 64} {
		row := []string{itoa(dims)}
		for _, mt := range []core.MatrixType{core.Diagonal, core.Triangular, core.Full} {
			s, err := measureNLQ(cfg, n, dims, mt, "udf", sqlgen.ListStyle)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.4f", s))
		}
		right.Rows = append(right.Rows, row)
	}
	return []*Table{left, right}, nil
}

// runFigure5 reproduces Figure 5: aggregate UDF time complexity in n
// (left: d ∈ {32, 64} × three matrix types) and in d (right:
// n ∈ {800k, 1600k} × three matrix types) — all curves linear.
func runFigure5(cfg Config) ([]*Table, error) {
	left := &Table{
		ID:     "f5",
		Title:  "Aggregate UDF time varying n (secs)",
		Header: []string{"n x1000(scaled)", "diag d=32", "triang d=32", "full d=32", "diag d=64", "triang d=64", "full d=64"},
	}
	for _, nk := range []int{100, 200, 400, 800, 1600} {
		n := cfg.rows(nk)
		row := []string{fmt.Sprintf("%d (%d rows)", nk, n)}
		for _, dims := range []int{32, 64} {
			for _, mt := range []core.MatrixType{core.Diagonal, core.Triangular, core.Full} {
				s, err := measureNLQ(cfg, n, dims, mt, "udf", sqlgen.ListStyle)
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%.4f", s))
			}
		}
		left.Rows = append(left.Rows, row)
	}
	right := &Table{
		ID:     "f5",
		Title:  "Aggregate UDF time varying d (secs)",
		Header: []string{"d", "diag n=800k", "triang n=800k", "full n=800k", "diag n=1600k", "triang n=1600k", "full n=1600k"},
		Note:   "linear growth in both n and d confirms the UDF is I/O-bound: up to d² in-memory operations ride along with the scan.",
	}
	for _, dims := range []int{8, 16, 32, 48, 64} {
		row := []string{itoa(dims)}
		for _, nk := range []int{800, 1600} {
			n := cfg.rows(nk)
			for _, mt := range []core.MatrixType{core.Diagonal, core.Triangular, core.Full} {
				s, err := measureNLQ(cfg, n, dims, mt, "udf", sqlgen.ListStyle)
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%.4f", s))
			}
		}
		right.Rows = append(right.Rows, row)
	}
	return []*Table{left, right}, nil
}

// runTable5 reproduces Table 5: the aggregate UDF under GROUP BY with
// k groups (mod(i, k)), diagonal matrices at d=32, string vs list.
func runTable5(cfg Config) ([]*Table, error) {
	const dims = 32
	t := &Table{
		ID:     "t5",
		Title:  fmt.Sprintf("GROUP BY aggregate UDF varying groups k at d=%d (secs)", dims),
		Header: []string{"n x1000(scaled)", "k", "string", "list"},
		Note:   "each group maintains its own n, L, Q state; the paper observed list faster than string throughout, with costs jumping as group count (and state memory) grows.",
	}
	for _, nk := range []int{800, 1600} {
		n := cfg.rows(nk)
		for _, k := range []int{1, 2, 4, 8, 16, 32} {
			d, cleanup, err := newDB(cfg)
			if err != nil {
				return nil, err
			}
			if err := loadX(d, cfg, n, dims); err != nil {
				cleanup()
				return nil, err
			}
			groupExpr := fmt.Sprintf("i %% %d", k)
			var strS, listS float64
			for _, style := range []sqlgen.PassStyle{sqlgen.StringStyle, sqlgen.ListStyle} {
				sql := sqlgen.NLQUDFGroupQuery("X", sqlgen.Dims(dims), core.Diagonal, style, groupExpr)
				elapsed, err := timeIt(cfg, func() error {
					res, err := d.Exec(sql)
					if err != nil {
						return err
					}
					if len(res.Rows) != k {
						return fmt.Errorf("harness: got %d groups, want %d", len(res.Rows), k)
					}
					return nil
				})
				if err != nil {
					cleanup()
					return nil, err
				}
				if style == sqlgen.StringStyle {
					strS = elapsed.Seconds()
				} else {
					listS = elapsed.Seconds()
				}
			}
			cleanup()
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d (%d rows)", nk, n), itoa(k),
				fmt.Sprintf("%.4f", strS), fmt.Sprintf("%.4f", listS),
			})
		}
	}
	return []*Table{t}, nil
}

// runAblatePartitions isolates the engine's parallelism: the same UDF
// computation with 1, 4 and 20 partitions (DESIGN.md §4 ablation).
func runAblatePartitions(cfg Config) ([]*Table, error) {
	const dims = 32
	t := &Table{
		ID:     "a1",
		Title:  "Ablation: aggregate UDF time vs partition count (secs)",
		Header: []string{"n x1000(scaled)", "P=1", "P=4", "P=20"},
		Note:   "the paper's Teradata ran 20 shared-nothing threads; this isolates how much of the UDF's win is the parallel partial aggregation.",
	}
	for _, nk := range []int{400, 1600} {
		n := cfg.rows(nk)
		row := []string{fmt.Sprintf("%d (%d rows)", nk, n)}
		for _, p := range []int{1, 4, 20} {
			pc := cfg
			pc.Partitions = p
			s, err := measureNLQ(pc, n, dims, core.Triangular, "udf", sqlgen.ListStyle)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.4f", s))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// runAblateSQLStyle compares §3.4's SQL alternatives: the single long
// query against one statement per matrix cell.
func runAblateSQLStyle(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:     "a2",
		Title:  "Ablation: one long SQL query vs per-cell statements (secs)",
		Header: []string{"d", "long query", "per-cell statements", "statements"},
		Note:   "the per-cell alternative re-scans X for every Q entry; the long query is the paper's one-scan rewrite.",
	}
	n := cfg.rows(100)
	for _, dims := range []int{4, 8, 16} {
		d, cleanup, err := newDB(cfg)
		if err != nil {
			return nil, err
		}
		if err := loadX(d, cfg, n, dims); err != nil {
			cleanup()
			return nil, err
		}
		longT, err := timeIt(cfg, func() error {
			_, err := runSQLNLQ(d, dims, core.Triangular)
			return err
		})
		if err != nil {
			cleanup()
			return nil, err
		}
		stmts := sqlgen.NLQQueriesPerCell("X", sqlgen.Dims(dims))
		cellT, err := timeIt(cfg, func() error {
			for _, s := range stmts {
				if _, err := d.Exec(s); err != nil {
					return err
				}
			}
			return nil
		})
		cleanup()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{itoa(dims), secs(longT), secs(cellT), itoa(len(stmts))})
	}
	return []*Table{t}, nil
}
