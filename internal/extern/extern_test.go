package extern

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
)

func TestComputeNLQMatchesDirect(t *testing.T) {
	cfg := synth.Config{N: 500, D: 4, Seed: 21}
	var buf bytes.Buffer
	if _, err := synth.WriteCSV(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	got, err := ComputeNLQ(&buf, 4, Options{SkipLeadingID: true, MatrixType: core.Triangular})
	if err != nil {
		t.Fatal(err)
	}
	pts, _ := synth.Points(cfg)
	want := core.MustNLQ(4, core.Triangular)
	for _, x := range pts {
		want.Update(x)
	}
	if got.N != want.N {
		t.Fatalf("n = %g, want %g", got.N, want.N)
	}
	for a := 0; a < 4; a++ {
		if math.Abs(got.L[a]-want.L[a]) > 1e-6 {
			t.Fatalf("L[%d] mismatch", a)
		}
		for b := 0; b <= a; b++ {
			if math.Abs(got.QAt(a, b)-want.QAt(a, b)) > 1e-4 {
				t.Fatalf("Q[%d][%d] = %g want %g", a, b, got.QAt(a, b), want.QAt(a, b))
			}
		}
	}
}

func TestComputeNLQWithoutID(t *testing.T) {
	in := "1,2\n3,4\n"
	s, err := ComputeNLQ(strings.NewReader(in), 2, Options{MatrixType: core.Full})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 2 || s.L[0] != 4 || s.L[1] != 6 {
		t.Fatalf("%+v", s)
	}
}

func TestComputeNLQErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"bad float", "1,abc\n"},
		{"too few fields", "1\n"},
		{"too many fields", "1,2,3\n"},
	}
	for _, c := range cases {
		if _, err := ComputeNLQ(strings.NewReader(c.in), 2, Options{}); err == nil {
			t.Errorf("%s: must fail", c.name)
		}
	}
	if _, err := ComputeNLQ(strings.NewReader(""), 0, Options{}); err == nil {
		t.Error("d=0 must fail")
	}
	// Empty input: valid, empty summaries.
	s, err := ComputeNLQ(strings.NewReader(""), 2, Options{})
	if err != nil || s.N != 0 {
		t.Errorf("empty input: %v %v", s, err)
	}
	// No trailing newline on last row still parses.
	s, err = ComputeNLQ(strings.NewReader("1,2\n3,4"), 2, Options{})
	if err != nil || s.N != 2 {
		t.Errorf("missing trailing newline: %v %v", s, err)
	}
}

func TestAnalyzeFileAndBuildModels(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := synth.WriteCSV(f, synth.Config{N: 800, D: 5, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	m, err := BuildModels(path, 5, 2, Options{SkipLeadingID: true, MatrixType: core.Triangular})
	if err != nil {
		t.Fatal(err)
	}
	if m.NLQ.N != 800 || m.Correlation.D != 5 || m.PCA.K != 2 {
		t.Fatalf("models = %+v", m)
	}
	if _, err := BuildModels(path, 5, 2, Options{MatrixType: core.Diagonal}); err == nil {
		t.Fatal("diagonal model building must fail")
	}
	if _, err := AnalyzeFile(filepath.Join(dir, "nope.csv"), 2, Options{}); err == nil {
		t.Fatal("missing file must fail")
	}
}

func TestScoreRegressionCSV(t *testing.T) {
	m := &core.LinRegModel{D: 2, Beta: []float64{10, 2, -1}}
	in := "7,1,2\n8,3,4\n"
	var out bytes.Buffer
	rows, err := ScoreRegressionCSV(strings.NewReader(in), &out, m)
	if err != nil || rows != 2 {
		t.Fatalf("rows=%d err=%v", rows, err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	// ŷ(1,2) = 10+2−2 = 10; ŷ(3,4) = 10+6−4 = 12.
	if lines[0] != "7,10" || lines[1] != "8,12" {
		t.Fatalf("lines = %v", lines)
	}
	if _, err := ScoreRegressionCSV(strings.NewReader("noid\n"), &out, m); err == nil {
		t.Fatal("missing id field must fail")
	}
}
