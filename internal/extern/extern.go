// Package extern is the paper's "C++ program on a workstation"
// comparator: a single-threaded analyzer that parses an exported text
// file and computes n, L, Q (and the downstream models) entirely
// outside the DBMS. It is deliberately not parallel — the paper's
// workstation had one CPU against the database server's 20 threads,
// and that asymmetry is part of the result being reproduced.
package extern

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Options configure the analyzer.
type Options struct {
	// SkipLeadingID drops the first CSV field (the point id i, which
	// is "not used for statistical purposes", §2.1).
	SkipLeadingID bool
	// MatrixType selects the Q computed. Default Triangular.
	MatrixType core.MatrixType
}

// ComputeNLQ scans a CSV stream once, keeping L and Q in main memory
// at all times, exactly as the paper's optimized C++ implementation.
func ComputeNLQ(r io.Reader, d int, opts Options) (*core.NLQ, error) {
	if d < 1 {
		return nil, fmt.Errorf("extern: invalid dimensionality %d", d)
	}
	s, err := core.NewNLQ(d, opts.MatrixType)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(r, 1<<16)
	x := make([]float64, d)
	lineNo := 0
	for {
		line, err := br.ReadString('\n')
		if len(line) == 0 && err == io.EOF {
			return s, nil
		}
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("extern: %w", err)
		}
		lineNo++
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			if err == io.EOF {
				return s, nil
			}
			continue
		}
		if perr := parseLine(line, x, opts.SkipLeadingID); perr != nil {
			return nil, fmt.Errorf("extern: line %d: %w", lineNo, perr)
		}
		if uerr := s.Update(x); uerr != nil {
			return nil, uerr
		}
		if err == io.EOF {
			return s, nil
		}
	}
}

// parseLine splits a CSV record and parses d floats into x.
func parseLine(line string, x []float64, skipID bool) error {
	field := 0
	want := len(x)
	start := 0
	idx := 0
	for i := 0; i <= len(line); i++ {
		if i < len(line) && line[i] != ',' {
			continue
		}
		raw := line[start:i]
		start = i + 1
		if skipID && field == 0 {
			field++
			continue
		}
		if idx >= want {
			return fmt.Errorf("too many fields (want %d values)", want)
		}
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return fmt.Errorf("bad float %q", raw)
		}
		x[idx] = f
		idx++
		field++
	}
	if idx != want {
		return fmt.Errorf("got %d values, want %d", idx, want)
	}
	return nil
}

// AnalyzeFile is ComputeNLQ over a file on the workstation's disk.
func AnalyzeFile(path string, d int, opts Options) (*core.NLQ, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("extern: %w", err)
	}
	defer f.Close()
	return ComputeNLQ(f, d, opts)
}

// Models bundles everything the external tool builds from one pass:
// the paper's Table 1 workloads (correlation, PCA, linear regression)
// all derive from the same summaries.
type Models struct {
	NLQ         *core.NLQ
	Correlation *core.CorrelationModel
	PCA         *core.PCAModel
}

// BuildModels runs the full external pipeline on an exported file:
// one scan for n, L, Q, then the model math in memory.
func BuildModels(path string, d, pcaK int, opts Options) (*Models, error) {
	if opts.MatrixType == core.Diagonal {
		return nil, fmt.Errorf("extern: model building needs a triangular or full Q")
	}
	nlq, err := AnalyzeFile(path, d, opts)
	if err != nil {
		return nil, err
	}
	corr, err := core.BuildCorrelation(nlq)
	if err != nil {
		return nil, err
	}
	pca, err := core.BuildPCA(nlq, pcaK, core.CorrelationBasis)
	if err != nil {
		return nil, err
	}
	return &Models{NLQ: nlq, Correlation: corr, PCA: pca}, nil
}

// ScoreRegressionCSV applies a regression model to an exported file,
// writing "i,yhat" lines — the external scoring comparator.
func ScoreRegressionCSV(r io.Reader, w io.Writer, m *core.LinRegModel) (int64, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	bw := bufio.NewWriterSize(w, 1<<16)
	x := make([]float64, m.D)
	var rows int64
	lineNo := 0
	for {
		line, err := br.ReadString('\n')
		if len(line) == 0 && err == io.EOF {
			break
		}
		if err != nil && err != io.EOF {
			return rows, fmt.Errorf("extern: %w", err)
		}
		lineNo++
		trimmed := strings.TrimRight(line, "\r\n")
		if trimmed == "" {
			if err == io.EOF {
				break
			}
			continue
		}
		// Leading id field retained for the output join key.
		comma := strings.IndexByte(trimmed, ',')
		if comma < 0 {
			return rows, fmt.Errorf("extern: line %d: missing id field", lineNo)
		}
		if perr := parseLine(trimmed[comma+1:], x, false); perr != nil {
			return rows, fmt.Errorf("extern: line %d: %w", lineNo, perr)
		}
		yhat, perr := m.Predict(x)
		if perr != nil {
			return rows, perr
		}
		fmt.Fprintf(bw, "%s,%s\n", trimmed[:comma], strconv.FormatFloat(yhat, 'g', 17, 64))
		rows++
		if err == io.EOF {
			break
		}
	}
	return rows, bw.Flush()
}
