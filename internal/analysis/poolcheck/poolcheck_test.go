package poolcheck

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestPoolCheck(t *testing.T) {
	analysistest.Run(t, Analyzer, "testdata/a")
}

// TestRealParserAndExecPools runs the analyzer over the packages that
// actually pool objects: the parser scratch pool and the prepared
// statement eval-set pools must satisfy the discipline as-is.
func TestRealParserAndExecPools(t *testing.T) {
	pkgs, err := analysis.Load("../../..",
		"./internal/engine/sqlparser", "./internal/engine/exec")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
