// Package a exercises poolcheck: a pooled buffer with a reset wrapper,
// use-after-Put through both the pool and the wrapper, a Put with a
// dirty field, and a pooled object escaping to package scope.
package a

import "sync"

type buf struct {
	data []byte
	n    int
}

var pool = sync.Pool{New: func() any { return new(buf) }}

func get() *buf { return pool.Get().(*buf) }

func put(b *buf) {
	b.data = b.data[:0]
	b.n = 0
	pool.Put(b)
}

func goodUse() int {
	b := get()
	defer put(b)
	b.n++
	return b.n
}

func goodDeferredLit() int {
	b := get()
	defer func() {
		b.data = nil
		pool.Put(b)
	}()
	b.data = append(b.data, 1)
	return len(b.data)
}

func useAfterWrapperPut() int {
	b := get()
	b.n = 1
	put(b)
	return b.n // want `after it was returned`
}

func useAfterDirectPut() int {
	b := get()
	b.n = 0
	pool.Put(b)
	return b.n // want `after it was returned`
}

func reassigned() int {
	b := get()
	b.n = 0
	pool.Put(b)
	b = get()
	defer put(b)
	return b.n
}

func putDirty() {
	b := get()
	b.data = append(b.data, 'x')
	pool.Put(b) // want `still holding data`
}

// putOnErrorPath recycles on the failure branch only: uses after the
// branch are on the other path and must not be flagged.
func putOnErrorPath(fail bool) *buf {
	b := get()
	if fail {
		pool.Put(b)
		return nil
	}
	b.n = 0
	return b
}

func putClearedByHelper() {
	b := get()
	b.data = append(b.data, 'x')
	reset(b)
	pool.Put(b)
}

func reset(b *buf) {
	b.data = b.data[:0]
	b.n = 0
}

var leaked *buf

func escapeDirect() {
	leaked = pool.Get().(*buf) // want `escapes to package-level`
}

func escapeViaWrapper() {
	b := get()
	leaked = b // want `escapes to package-level`
	_ = b
}

var (
	_ = goodUse
	_ = goodDeferredLit
	_ = useAfterWrapperPut
	_ = useAfterDirectPut
	_ = reassigned
	_ = putOnErrorPath
	_ = putDirty
	_ = putClearedByHelper
	_ = escapeDirect
	_ = escapeViaWrapper
)
