// Package poolcheck enforces sync.Pool discipline on the engine's hot
// paths (the parser scratch pool, the prepared-statement eval-set
// pools):
//
//   - no use-after-Put: once an object is returned to a pool — via
//     pool.Put or a wrapper like sqlparser.putScratch — another
//     goroutine may own it; any later use of the same variable is
//     flagged (unless it is reassigned first);
//   - reset before Put: a field written with live data must be cleared
//     (nil / zero / x.f[:0] / empty literal) — or handed to a helper
//     that can clear it — before the object is pooled, so one
//     request's data cannot leak into the next;
//   - no escape: a pooled object stored in a package-level variable
//     outlives its lease and races with the pool's next lessee.
//
// Wrappers are recognized cross-package through PutsPooled/GetsPooled
// facts: a function that Puts its parameter, or returns a Get result,
// extends the discipline to its callers. The checks are lexical
// (position-ordered within one function); deferred Puts — including
// Puts inside a `defer func(){...}()` body — run at return and are
// exempt from ordering-based checks.
package poolcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

// Analyzer is the poolcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "poolcheck",
	Doc: "flag sync.Pool misuse: use-after-Put, objects pooled with " +
		"uncleared fields, and pooled objects escaping to package level",
	Run: run,
}

// PutsPooled marks a function that returns its Param'th parameter to a
// sync.Pool; calls to it count as Put sites in callers.
type PutsPooled struct{ Param int }

func (PutsPooled) AFact() {}

// GetsPooled marks a function that returns an object leased from a
// sync.Pool; its results are tracked like direct Get results.
type GetsPooled struct{}

func (GetsPooled) AFact() {}

// putSite is one point where an object is returned to a pool.
type putSite struct {
	pos, end token.Pos // the Put (or wrapper) call expression's extent
	obj      types.Object
	deferred bool
	direct   bool // pool.Put itself (reset check applies), not a wrapper
}

// fieldWrite is one `x.f = rhs` assignment on a tracked object.
type fieldWrite struct {
	pos      token.Pos
	obj      types.Object
	field    string
	clearing bool
}

func run(pass *analysis.Pass) error {
	g := pass.CallGraph()

	// Pass 1: wrapper facts — a function that Puts a parameter, or
	// returns a Get-derived value, extends the pool discipline to its
	// callers (including cross-package ones, via the fact store).
	for _, fn := range g.Functions() {
		decl := g.Decls[fn]
		fnObj, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func)
		if !ok {
			continue
		}
		params := fnObj.Type().(*types.Signature).Params()
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPoolCall(pass, call, "Put") && len(call.Args) == 1 {
				if obj := identObj(pass, call.Args[0]); obj != nil {
					for i := 0; i < params.Len(); i++ {
						if params.At(i) == obj {
							if _, dup := analysis.LookupFact[PutsPooled](pass.Facts, fn); !dup {
								pass.Facts.Export(fn, PutsPooled{Param: i})
							}
						}
					}
				}
			}
			return true
		})
		getDerived := collectGetDerived(pass, decl)
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				res = ast.Unparen(res)
				if isGetExpr(pass, res) || getDerived[identObj(pass, res)] {
					if _, dup := analysis.LookupFact[GetsPooled](pass.Facts, fn); !dup {
						pass.Facts.Export(fn, GetsPooled{})
					}
				}
			}
			return true
		})
	}

	// Pass 2: per-function checks.
	for _, fn := range g.Functions() {
		checkFunc(pass, g, fn)
	}
	return nil
}

// checkFunc applies the three checks inside one function body.
func checkFunc(pass *analysis.Pass, g *analysis.CallGraph, fn string) {
	decl := g.Decls[fn]
	deferredPos := deferredRegions(decl.Body)

	var puts []putSite
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPoolCall(pass, call, "Put") && len(call.Args) == 1 {
			if obj := identObj(pass, call.Args[0]); obj != nil {
				puts = append(puts, putSite{pos: call.Pos(), end: call.End(), obj: obj,
					deferred: deferredPos(call.Pos()), direct: true})
			}
			return true
		}
		// Wrapper call: callee carries a PutsPooled fact.
		if callee, _ := calleeKey(pass, call); callee != "" {
			if f, ok := analysis.LookupFact[PutsPooled](pass.Facts, callee); ok {
				if f.Param >= 0 && f.Param < len(call.Args) {
					if obj := identObj(pass, call.Args[f.Param]); obj != nil {
						puts = append(puts, putSite{pos: call.Pos(), end: call.End(), obj: obj,
							deferred: deferredPos(call.Pos())})
					}
				}
			}
		}
		return true
	})

	writes, assigns, uses, calls := collectAccesses(pass, decl)
	sort.Slice(puts, func(i, j int) bool { return puts[i].pos < puts[j].pos })

	for _, put := range puts {
		if !put.deferred {
			// Use-after-Put: a later use of the same object on the Put's
			// own control-flow path — the suffix of the Put statement's
			// innermost block, up to and including its first terminating
			// statement (a Put followed by `return err` does not reach
			// uses in the enclosing block). Reassignment clears the taint.
			regionEnd := putRegionEnd(decl.Body, put.end)
			for _, use := range uses[put.obj] {
				if use <= put.end || use > regionEnd {
					continue
				}
				reassigned := false
				for _, a := range assigns[put.obj] {
					if a > put.pos && a < use {
						reassigned = true
						break
					}
				}
				if !reassigned {
					pass.Reportf(use, "use of %s after it was returned to the pool at line %d",
						put.obj.Name(), pass.Fset.Position(put.pos).Line)
				}
			}
		}
		if put.direct && !put.deferred {
			// Reset-before-Put: the last write of each field must clear
			// it, unless a helper call took the object afterwards.
			last := map[string]fieldWrite{}
			for _, w := range writes {
				if w.obj == put.obj && w.pos < put.pos {
					last[w.field] = w
				}
			}
			for _, w := range last {
				if w.clearing {
					continue
				}
				helped := false
				for _, cp := range calls[put.obj] {
					if cp > w.pos && cp < put.pos {
						helped = true
						break
					}
				}
				if !helped {
					pass.Reportf(put.pos,
						"%s returned to pool with field %s still holding data (last write at line %d); clear it before Put",
						put.obj.Name(), w.field, pass.Fset.Position(w.pos).Line)
				}
			}
		}
	}

	// Escape: a Get-derived object assigned to a package-level variable.
	getDerived := collectGetDerived(pass, decl)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			ident, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			v, ok := pass.TypesInfo.Uses[ident].(*types.Var)
			if !ok || v.Parent() != pass.Pkg.Scope() {
				continue
			}
			if i >= len(as.Rhs) {
				continue
			}
			rhs := ast.Unparen(as.Rhs[i])
			if isGetExpr(pass, rhs) || getDerived[identObj(pass, rhs)] {
				pass.Reportf(as.Pos(),
					"pooled object escapes to package-level variable %s; it races with the pool's next lessee", v.Name())
			}
		}
		return true
	})
}

// collectAccesses gathers, per object: field writes (with clearingness),
// assignments to the variable itself, identifier uses, and calls that
// take the object (as receiver or argument).
func collectAccesses(pass *analysis.Pass, decl *ast.FuncDecl) (
	writes []fieldWrite,
	assigns map[types.Object][]token.Pos,
	uses map[types.Object][]token.Pos,
	calls map[types.Object][]token.Pos,
) {
	assigns = map[types.Object][]token.Pos{}
	uses = map[types.Object][]token.Pos{}
	calls = map[types.Object][]token.Pos{}
	lhsIdents := map[*ast.Ident]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				lhs = ast.Unparen(lhs)
				if ident, ok := lhs.(*ast.Ident); ok {
					lhsIdents[ident] = true
					if obj := pass.TypesInfo.ObjectOf(ident); obj != nil {
						assigns[obj] = append(assigns[obj], n.Pos())
					}
					continue
				}
				if sel, ok := lhs.(*ast.SelectorExpr); ok {
					if obj := identObj(pass, sel.X); obj != nil {
						var rhs ast.Expr
						if i < len(n.Rhs) {
							rhs = n.Rhs[i]
						}
						writes = append(writes, fieldWrite{pos: n.Pos(), obj: obj,
							field: sel.Sel.Name, clearing: isClearing(pass, sel, rhs)})
					}
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if obj := identObj(pass, sel.X); obj != nil {
					calls[obj] = append(calls[obj], n.Pos())
				}
			}
			for _, arg := range n.Args {
				if obj := identObj(pass, arg); obj != nil {
					calls[obj] = append(calls[obj], n.Pos())
				}
			}
		case *ast.Ident:
			if !lhsIdents[n] {
				if obj := pass.TypesInfo.Uses[n]; obj != nil {
					uses[obj] = append(uses[obj], n.Pos())
				}
			}
		}
		return true
	})
	return writes, assigns, uses, calls
}

// collectGetDerived returns the set of objects assigned from a pool
// Get (directly, through a type assertion, or through a GetsPooled
// wrapper) in decl.
func collectGetDerived(pass *analysis.Pass, decl *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			ident, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || i >= len(as.Rhs) {
				continue
			}
			if isGetExpr(pass, as.Rhs[i]) {
				if obj := pass.TypesInfo.ObjectOf(ident); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// isGetExpr reports whether e is a pool Get call or a GetsPooled
// wrapper call, unwrapping parens and type assertions.
func isGetExpr(pass *analysis.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	if isPoolCall(pass, call, "Get") {
		return true
	}
	if callee, _ := calleeKey(pass, call); callee != "" {
		if _, ok := analysis.LookupFact[GetsPooled](pass.Facts, callee); ok {
			return true
		}
	}
	return false
}

// isPoolCall reports whether call is sync.Pool method name.
func isPoolCall(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil {
		return false
	}
	fnObj, ok := selection.Obj().(*types.Func)
	if !ok {
		return false
	}
	recv := fnObj.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	n := namedOf(recv.Type())
	return n != nil && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "Pool"
}

// calleeKey resolves call's callee to its object key ("" when the
// callee is not a statically-known function).
func calleeKey(pass *analysis.Pass, call *ast.CallExpr) (string, *types.Func) {
	var fnObj *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fnObj, _ = pass.TypesInfo.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		if sel := pass.TypesInfo.Selections[fun]; sel != nil {
			fnObj, _ = sel.Obj().(*types.Func)
		} else {
			fnObj, _ = pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		}
	}
	if fnObj == nil {
		return "", nil
	}
	return analysis.ObjectKey(fnObj), fnObj
}

// identObj resolves an expression to the object of a plain identifier
// (nil for anything more complex).
func identObj(pass *analysis.Pass, e ast.Expr) types.Object {
	ident, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.ObjectOf(ident)
}

// isClearing reports whether assigning rhs to the field selected by
// sel leaves no live data: nil, a zero literal, false, an empty
// composite literal, or a self-truncating slice x.f[:0].
func isClearing(pass *analysis.Pass, sel *ast.SelectorExpr, rhs ast.Expr) bool {
	if rhs == nil {
		return false
	}
	switch rhs := ast.Unparen(rhs).(type) {
	case *ast.Ident:
		return rhs.Name == "nil" || rhs.Name == "false"
	case *ast.BasicLit:
		return rhs.Value == "0" || rhs.Value == `""` || rhs.Value == "0.0"
	case *ast.CompositeLit:
		return len(rhs.Elts) == 0
	case *ast.SliceExpr:
		if rhs.Low != nil {
			return false
		}
		if high, ok := rhs.High.(*ast.BasicLit); !ok || high.Value != "0" {
			return false
		}
		// x.f = <expr>[:0] empties whatever backing array it aliases.
		return true
	}
	return false
}

// putRegionEnd computes how far a use-after-Put taint extends: within
// the innermost statement list containing the Put, sibling statements
// after it remain tainted up to and including the first terminating
// statement (return/branch) — execution cannot fall past it back into
// an enclosing block on the Put path.
func putRegionEnd(body *ast.BlockStmt, putEnd token.Pos) token.Pos {
	var innermost []ast.Stmt
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for _, s := range list {
			if s.Pos() <= putEnd && putEnd <= s.End() {
				innermost = list // keep descending: a deeper list wins
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	end := putEnd
	past := false
	for _, s := range innermost {
		if !past {
			if s.Pos() <= putEnd && putEnd <= s.End() {
				past = true
			}
			continue
		}
		end = s.End()
		switch s.(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			return end
		}
	}
	return end
}

// deferredRegions returns a predicate reporting whether a position
// executes at function return: directly `defer f(x)`, or inside the
// body of a `defer func(){ ... }()` literal.
func deferredRegions(body *ast.BlockStmt) func(token.Pos) bool {
	type span struct{ start, end token.Pos }
	var spans []span
	ast.Inspect(body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		spans = append(spans, span{ds.Call.Pos(), ds.Call.End()})
		return true
	})
	return func(pos token.Pos) bool {
		for _, s := range spans {
			if pos >= s.start && pos <= s.end {
				return true
			}
		}
		return false
	}
}

// namedOf strips pointers and returns the named type behind t.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
