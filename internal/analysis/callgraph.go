package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Edge is one static call recorded by the call graph: Caller invokes
// Callee at Pos. Calls through function values and built-ins are not
// recorded; calls inside function literals are attributed to the
// enclosing declared function (Lit points at the innermost literal, so
// analyzers that care — e.g. a callback invoked under a lock — can
// still tell literal-body calls apart).
type Edge struct {
	Caller string // ObjectKey of the enclosing *ast.FuncDecl's object
	Callee string // ObjectKey of the resolved callee
	// Interface reports that the callee is an interface method: the
	// concrete target is unknown locally and must be matched against
	// implementations (possibly in other packages, via facts).
	Interface bool
	Pos       token.Pos
	// Lit is the innermost function literal containing the call, nil
	// for calls made directly in the declared function's body.
	Lit *ast.FuncLit
	// Args are the call's argument expressions (the AST nodes), kept so
	// flow-style analyzers can inspect what was passed without
	// re-walking the file.
	Args []ast.Expr
	// CalleeObj is the resolved callee in this package's type universe.
	CalleeObj *types.Func
}

// CallGraph holds the static call edges of one package, bottom-up
// building block for the cross-package invariant analyzers.
type CallGraph struct {
	// Edges maps each declared function's key to its outgoing calls, in
	// source order.
	Edges map[string][]Edge
	// Decls maps each declared function's key to its declaration.
	Decls map[string]*ast.FuncDecl
	// order preserves declaration order for deterministic iteration.
	order []string
}

// Functions returns every declared function's key in declaration order.
func (g *CallGraph) Functions() []string { return g.order }

// BuildCallGraph computes the call graph of pkg.
func BuildCallGraph(pkg *Package) *CallGraph {
	g := &CallGraph{
		Edges: make(map[string][]Edge),
		Decls: make(map[string]*ast.FuncDecl),
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pkg.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			key := ObjectKey(obj)
			g.Decls[key] = fd
			g.order = append(g.order, key)
			g.Edges[key] = collectEdges(pkg, key, fd.Body)
		}
	}
	return g
}

// collectEdges walks one function body recording resolvable calls.
func collectEdges(pkg *Package, caller string, body ast.Node) []Edge {
	var out []Edge
	var lits []*ast.FuncLit // stack of enclosing literals
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, n)
			ast.Inspect(n.Body, walk)
			lits = lits[:len(lits)-1]
			return false
		case *ast.CallExpr:
			if callee, iface := resolveCallee(pkg, n); callee != nil {
				var lit *ast.FuncLit
				if len(lits) > 0 {
					lit = lits[len(lits)-1]
				}
				out = append(out, Edge{
					Caller:    caller,
					Callee:    ObjectKey(callee),
					Interface: iface,
					Pos:       n.Pos(),
					Lit:       lit,
					Args:      n.Args,
					CalleeObj: callee,
				})
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// resolveCallee resolves a call expression to a *types.Func, reporting
// whether the call goes through an interface method. Conversions,
// built-ins and calls of plain function values resolve to nil.
func resolveCallee(pkg *Package, call *ast.CallExpr) (*types.Func, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.TypesInfo.Uses[fun].(*types.Func)
		return fn, false
	case *ast.SelectorExpr:
		if sel := pkg.TypesInfo.Selections[fun]; sel != nil {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil, false
			}
			_, iface := sel.Recv().Underlying().(*types.Interface)
			return fn, iface
		}
		// Qualified reference: pkg.Func or Type.Method expression.
		fn, _ := pkg.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn, false
	}
	return nil, false
}

// Reaches computes the set of declared functions that can reach, via
// static calls, a callee accepted by isBase. For every reaching
// function the returned map holds a human-readable call chain ending
// in the base reason, e.g. "Insert → appendFile → PartitionRowCounts
// (acquires storage.Table.mu)". isBase is consulted for every callee,
// so cross-package base members (known only through facts) work the
// same as local ones. Recursion converges because a function's chain
// is only set once.
func (g *CallGraph) Reaches(isBase func(calleeKey string) (reason string, ok bool)) map[string]string {
	chain := make(map[string]string)
	for changed := true; changed; {
		changed = false
		for _, caller := range g.order {
			if _, done := chain[caller]; done {
				continue
			}
			for _, e := range g.Edges[caller] {
				if reason, ok := isBase(e.Callee); ok {
					chain[caller] = ShortName(caller) + " → " + ShortName(e.Callee) + " (" + reason + ")"
					changed = true
					break
				}
				if via, ok := chain[e.Callee]; ok {
					chain[caller] = ShortName(caller) + " → " + via
					changed = true
					break
				}
			}
		}
	}
	return chain
}

// ShortName strips the package path from an object key, keeping
// "Type.Method" or "Func".
func ShortName(key string) string {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '/' {
			return key[i+1:]
		}
	}
	// No slash: a stdlib-style key ("sync.Mutex.Lock") is already short.
	return key
}
