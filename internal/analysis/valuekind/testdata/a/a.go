// Fixture for the valuekind analyzer.
package a

import "repro/internal/engine/sqltypes"

var schema = sqltypes.MustSchema( // want `sqltypes.MustSchema panics on bad input and is test-only`
	sqltypes.Column{Name: "x", Type: sqltypes.TypeDouble},
)

func bad(v sqltypes.Value) float64 {
	return v.MustFloat() // want `sqltypes.MustFloat panics on bad input and is test-only`
}

func good(v sqltypes.Value) (float64, error) {
	return v.AsFloat()
}

func goodSchema() (*sqltypes.Schema, error) {
	return sqltypes.NewSchema(sqltypes.Column{Name: "x", Type: sqltypes.TypeDouble})
}
