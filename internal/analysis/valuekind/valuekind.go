// Package valuekind bans the panic-prone sqltypes conveniences in
// production code. sqltypes.Value.MustFloat and sqltypes.MustSchema
// panic on bad input; they exist for test fixtures where a panic is a
// clear test failure. Production code must use the error-returning
// forms (Value.AsFloat, NewSchema) and handle the error — a malformed
// UDF result or schema must surface as a query error, not crash the
// engine mid-scan.
package valuekind

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

const sqltypesPath = "repro/internal/engine/sqltypes"

// alternatives maps each banned sqltypes function to its
// error-returning replacement.
var alternatives = map[string]string{
	"MustFloat":  "AsFloat",
	"MustSchema": "NewSchema",
}

// Analyzer flags MustFloat/MustSchema calls outside _test.go files.
var Analyzer = &analysis.Analyzer{
	Name: "valuekind",
	Doc: "report panic-prone sqltypes accessors (Value.MustFloat, MustSchema) in non-test code; " +
		"production paths must use the error-returning forms",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, sel)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != sqltypesPath {
				return true
			}
			alt, banned := alternatives[fn.Name()]
			if !banned {
				return true
			}
			pass.Reportf(call.Pos(), "sqltypes.%s panics on bad input and is test-only; use %s and handle the error", fn.Name(), alt)
			return true
		})
	}
	return nil
}

// calleeFunc resolves a selector call to its *types.Func: a method
// (via Selections) or a package-level function (via Uses).
func calleeFunc(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Func {
	if s := pass.TypesInfo.Selections[sel]; s != nil {
		if fn, ok := s.Obj().(*types.Func); ok {
			return fn
		}
		return nil
	}
	if obj := pass.TypesInfo.Uses[sel.Sel]; obj != nil {
		if fn, ok := obj.(*types.Func); ok {
			return fn
		}
	}
	return nil
}
