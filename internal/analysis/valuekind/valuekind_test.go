package valuekind_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/valuekind"
)

func TestValueKind(t *testing.T) {
	analysistest.Run(t, valuekind.Analyzer, "testdata/a")
}
