// Package callgraph is the fixture for the call-graph facility test:
// a small chain of functions, a method, an interface call and a
// function literal.
package callgraph

type ringer interface {
	Ring()
}

type bell struct{}

func (bell) Ring() {}

type gong struct{}

func (g *gong) strike() { leaf() }

func leaf() {}

func mid() { leaf() }

func top(r ringer) {
	mid()
	r.Ring()
	g := &gong{}
	fn := func() { g.strike() }
	fn()
}

var _ = top
var _ = bell{}
