// Package ignore exercises the //statlint:ignore directive: the test
// analyzer flags every function whose name starts with "bad".
package ignore

func bad1() {} //statlint:ignore flagfunc trailing suppression with a reason

//statlint:ignore flagfunc full-line suppression with a reason
func bad2() {}

//statlint:ignore flagfunc
func bad3() {}

//statlint:ignore otheranalyzer reason that names a different analyzer
func bad4() {}

func bad5() {}

func good() {}

var _ = bad1
var _ = bad2
var _ = bad3
var _ = bad4
var _ = bad5
var _ = good
