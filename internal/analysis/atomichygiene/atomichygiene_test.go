package atomichygiene

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestAtomicHygiene(t *testing.T) {
	analysistest.Run(t, Analyzer, "testdata/a")
}
