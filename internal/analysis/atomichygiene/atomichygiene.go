// Package atomichygiene enforces all-or-nothing atomics on struct
// fields: a field whose address is passed to a sync/atomic function
// anywhere in the program must be accessed through sync/atomic
// everywhere. A plain read or write of such a field is a data race
// even when every *other* access is atomic — the race detector only
// catches it when the two sides collide at runtime, while this check
// catches it statically.
//
// The field set is computed bottom-up: each package exports an
// AtomicField fact per field it touches atomically, so a dependent
// package's plain access to an exported field is flagged too. (The
// reverse direction — a dependency accessing plainly a field only
// dependents touch atomically — is outside the bottom-up fact flow;
// in practice atomic fields are owned and accessed by their defining
// package.) Typed atomics (atomic.Int64 et al.) need no checking:
// they make plain access impossible, which is why mixed fields are
// usually best migrated to them.
package atomichygiene

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the atomichygiene analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomichygiene",
	Doc: "flag plain accesses to struct fields that are accessed via " +
		"sync/atomic elsewhere (mixed access is a data race)",
	Run: run,
}

// AtomicField marks a struct field (keyed "pkgpath.Type.field") as
// accessed through sync/atomic; At records one such site.
type AtomicField struct{ At string }

func (AtomicField) AFact() {}

// atomicFuncs is the set of sync/atomic functions whose first argument
// is the address of the atomically-accessed word.
var atomicFuncs = buildAtomicFuncs()

func buildAtomicFuncs() map[string]bool {
	out := map[string]bool{}
	for _, op := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"} {
		for _, t := range []string{"Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer"} {
			out[op+t] = true
		}
	}
	return out
}

func run(pass *analysis.Pass) error {
	// Pass 1: collect fields accessed atomically in this package, and
	// remember the exact selector nodes inside atomic calls so pass 2
	// does not flag them.
	exempt := map[*ast.SelectorExpr]bool{}
	localAtomic := map[string]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 || !isAtomicCall(pass, call) {
				return true
			}
			sel := addrFieldSel(call.Args[0])
			if sel == nil {
				return true
			}
			key := fieldKeyOf(pass, sel)
			if key == "" {
				return true
			}
			exempt[sel] = true
			if _, dup := localAtomic[key]; !dup {
				localAtomic[key] = pass.Fset.Position(call.Pos()).String()
			}
			return true
		})
	}

	// Merge fields imported from dependencies, then export the local
	// ones for dependents.
	atomicFields := map[string]string{}
	for _, kf := range analysis.AllFacts[AtomicField](pass.Facts) {
		atomicFields[kf.Key] = kf.Fact.At
	}
	for key, at := range localAtomic {
		if _, ok := atomicFields[key]; !ok {
			pass.Facts.Export(key, AtomicField{At: at})
			atomicFields[key] = at
		}
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: flag every non-exempt access to an atomic field.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || exempt[sel] {
				return true
			}
			key := fieldKeyOf(pass, sel)
			if key == "" {
				return true
			}
			if at, ok := atomicFields[key]; ok {
				pass.Reportf(sel.Pos(),
					"plain access to %s, which is accessed with sync/atomic elsewhere (e.g. %s); mixed access is a data race — use atomic ops everywhere or a typed atomic",
					analysis.ShortName(key), at)
			}
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether call invokes a sync/atomic package
// function from the address-taking family.
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !atomicFuncs[sel.Sel.Name] {
		return false
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
	return ok && pkgName.Imported().Path() == "sync/atomic"
}

// addrFieldSel unwraps &x.f to the field selector, nil otherwise.
func addrFieldSel(arg ast.Expr) *ast.SelectorExpr {
	unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || unary.Op != token.AND {
		return nil
	}
	sel, _ := ast.Unparen(unary.X).(*ast.SelectorExpr)
	return sel
}

// fieldKeyOf resolves a selector to a struct-field key ("" when the
// selector is not a field access on a named type).
func fieldKeyOf(pass *analysis.Pass, sel *ast.SelectorExpr) string {
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return ""
	}
	return analysis.FieldKey(selection.Recv(), sel.Sel.Name)
}
