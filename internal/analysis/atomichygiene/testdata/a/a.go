// Package a exercises atomichygiene: the hits field is accessed both
// atomically and plainly (a race); total and name are only ever
// accessed plainly (fine).
package a

import "sync/atomic"

type counters struct {
	hits  int64
	total int64
	name  string
}

func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) read() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counters) mixedRead() int64 {
	return c.hits // want `mixed access is a data race`
}

func (c *counters) mixedWrite() {
	c.hits = 0 // want `mixed access is a data race`
}

func (c *counters) mixedInc() {
	c.hits++ // want `mixed access is a data race`
}

func (c *counters) plainOnly() int64 {
	c.total++
	return c.total
}

func (c *counters) label() string { return c.name }

var (
	_ = (&counters{}).bump
	_ = (&counters{}).read
	_ = (&counters{}).mixedRead
	_ = (&counters{}).mixedWrite
	_ = (&counters{}).mixedInc
	_ = (&counters{}).plainOnly
	_ = (&counters{}).label
)
