// Package badwant carries a malformed want comment (unquoted pattern)
// so the self-test can verify the harness rejects it loudly.
package badwant

func f() {} // want unquoted-pattern

var _ = f
