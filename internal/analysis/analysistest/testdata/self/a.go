// Package self is the analysistest self-test fixture. The selftest
// analyzer (defined in selftest_test.go) reports on functions by name;
// the want comments below are deliberately arranged so the harness
// must produce one "unexpected diagnostic" (beta) and one "no
// diagnostic matching" (gamma), and must match two wants on one line
// (delta).
package self

func alpha() {} // want `alpha reported`

func beta() {}

func gamma() {} // want `gamma never reported`

func delta() {} // want `delta first` `delta second`

var _ = alpha
var _ = beta
var _ = gamma
var _ = delta
