// Package analysistest runs an analyzer over a fixture directory and
// checks its findings against // want "regexp" comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the stdlib-only
// framework in internal/analysis.
//
// A // want comment holds one or more quoted regexps; each must match
// a distinct diagnostic reported on the comment's line:
//
//	bad()  // want `first finding` `second finding`
//
// Both failure directions are reported with file:line positions: a
// diagnostic no want matched ("unexpected diagnostic"), and a want no
// diagnostic matched ("no diagnostic matching").
package analysistest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// T is the subset of *testing.T the harness needs; the package's own
// self-test substitutes a recorder to verify failure reporting.
type T interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

var _ T = (*testing.T)(nil)

// expectation is one // want entry: a regexp expected to match a
// diagnostic on the same line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// Run loads the fixture package in dir, applies the analyzer, and
// fails the test for any unexpected diagnostic or unmatched // want.
func Run(t T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkg, err := analysis.LoadFixture(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	var wants []*expectation
	for _, f := range pkg.Files {
		wants = append(wants, collectWants(t, pkg, f)...)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
outer:
	for _, d := range diags {
		for _, w := range wants {
			if !w.used && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.used = true
				continue outer
			}
		}
		t.Errorf("%s:%d: unexpected diagnostic: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// collectWants extracts the // want "re" expectations from a file.
// One comment may carry several quoted patterns; each becomes its own
// expectation on the comment's line.
func collectWants(t T, pkg *analysis.Package, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			patterns, err := parseWant(strings.TrimPrefix(text, "want "))
			if err != nil {
				t.Fatalf("%s: bad want comment: %v", pos, err)
			}
			for _, p := range patterns {
				re, err := regexp.Compile(p)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pos, p, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out
}

// parseWant splits `"re1" "re2"` (double- or back-quoted) into its
// component patterns.
func parseWant(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("expected quoted regexp, got %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated pattern in %q", s)
		}
		raw := s[:end+2]
		p, err := strconv.Unquote(raw)
		if err != nil {
			return nil, fmt.Errorf("unquoting %q: %v", raw, err)
		}
		out = append(out, p)
		s = strings.TrimSpace(s[end+2:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return out, nil
}
