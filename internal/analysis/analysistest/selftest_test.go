package analysistest

import (
	"fmt"
	"go/ast"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// recorder implements T, capturing failures instead of failing.
type recorder struct {
	errors []string
	fatals []string
}

func (r *recorder) Helper() {}
func (r *recorder) Errorf(format string, args ...any) {
	r.errors = append(r.errors, fmt.Sprintf(format, args...))
}
func (r *recorder) Fatalf(format string, args ...any) {
	r.fatals = append(r.fatals, fmt.Sprintf(format, args...))
	panic(selfTestBailout{})
}

// selfTestBailout unwinds Run after a recorded Fatalf, mimicking
// testing.T.Fatalf's runtime.Goexit without killing the goroutine.
type selfTestBailout struct{}

func runRecorded(t *testing.T, a *analysis.Analyzer, dir string) *recorder {
	t.Helper()
	rec := &recorder{}
	func() {
		defer func() {
			if p := recover(); p != nil {
				if _, ok := p.(selfTestBailout); !ok {
					panic(p)
				}
			}
		}()
		Run(rec, a, dir)
	}()
	return rec
}

// selftest reports on functions of the fixture by name: one finding on
// alpha, one on beta (which has no want), two on delta (one line, two
// wants), none on gamma (whose want must go unmatched).
var selftest = &analysis.Analyzer{
	Name: "selftest",
	Doc:  "fixture analyzer for the analysistest self-test",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				switch fd.Name.Name {
				case "alpha":
					pass.Reportf(fd.Pos(), "alpha reported")
				case "beta":
					pass.Reportf(fd.Pos(), "beta reported with no want")
				case "delta":
					pass.Reportf(fd.Pos(), "delta first finding")
					pass.Reportf(fd.Pos(), "delta second finding")
				}
			}
		}
		return nil
	},
}

func TestSelfReportsBothDirectionsWithPositions(t *testing.T) {
	rec := runRecorded(t, selftest, "testdata/self")
	if len(rec.fatals) > 0 {
		t.Fatalf("unexpected fatal: %v", rec.fatals)
	}
	if len(rec.errors) != 2 {
		t.Fatalf("got %d failures, want 2 (one unexpected, one missing):\n%s",
			len(rec.errors), strings.Join(rec.errors, "\n"))
	}
	var sawUnexpected, sawMissing bool
	for _, e := range rec.errors {
		switch {
		case strings.Contains(e, "unexpected diagnostic") && strings.Contains(e, "beta"):
			sawUnexpected = true
			if !strings.Contains(e, "a.go:11") {
				t.Errorf("unexpected-diagnostic failure lacks file:line position: %q", e)
			}
		case strings.Contains(e, "no diagnostic matching") && strings.Contains(e, "gamma"):
			sawMissing = true
			if !strings.Contains(e, "a.go:13") {
				t.Errorf("missing-want failure lacks file:line position: %q", e)
			}
		default:
			t.Errorf("unrecognized failure: %q", e)
		}
	}
	if !sawUnexpected {
		t.Error("harness did not report the unexpected diagnostic on beta")
	}
	if !sawMissing {
		t.Error("harness did not report the unmatched want on gamma")
	}
}

func TestSelfMultipleWantsOnOneLine(t *testing.T) {
	// delta carries two wants on one line and the analyzer reports two
	// findings there; neither direction may fail for it.
	rec := runRecorded(t, selftest, "testdata/self")
	for _, e := range rec.errors {
		if strings.Contains(e, "delta") {
			t.Errorf("delta's two wants on one line did not both match: %q", e)
		}
	}
}

func TestSelfBadWantComment(t *testing.T) {
	rec := runRecorded(t, &analysis.Analyzer{
		Name: "noop",
		Doc:  "noop",
		Run:  func(*analysis.Pass) error { return nil },
	}, "testdata/badwant")
	if len(rec.fatals) != 1 {
		t.Fatalf("got %d fatals, want 1 for the malformed want comment: %v", len(rec.fatals), rec.fatals)
	}
	if !strings.Contains(rec.fatals[0], "bad want comment") {
		t.Errorf("fatal does not describe the malformed want: %q", rec.fatals[0])
	}
}
