package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module under a temp dir and returns
// its root. files maps relative paths to contents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for rel, content := range files {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadGoodModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"ok/ok.go": "package ok\n\n// Answer is the answer.\nfunc Answer() int { return 42 }\n",
	})
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Path != "tmpmod/ok" {
		t.Errorf("package path = %q, want tmpmod/ok", p.Path)
	}
	if p.Types == nil || p.Types.Scope().Lookup("Answer") == nil {
		t.Errorf("type info missing Answer")
	}
	if len(p.Files) != 1 {
		t.Errorf("got %d files, want 1", len(p.Files))
	}
}

func TestLoadSurfacesSyntaxError(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"ok/ok.go":   "package ok\n\nfunc Fine() {}\n",
		"bad/bad.go": "package bad\n\nfunc Broken( {\n",
	})
	_, err := Load(dir, "./...")
	if err == nil {
		t.Fatal("Load succeeded on a module with a syntax-broken package")
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Errorf("error does not name the broken package: %v", err)
	}
}

func TestLoadSurfacesTypeError(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"bad/bad.go": "package bad\n\nfunc Broken() int { return undefinedIdent }\n",
	})
	_, err := Load(dir, "./...")
	if err == nil {
		t.Fatal("Load succeeded on a module with a type-broken package")
	}
	if !strings.Contains(err.Error(), "undefinedIdent") && !strings.Contains(err.Error(), "bad") {
		t.Errorf("error does not surface the type failure: %v", err)
	}
}

func TestLoadSurfacesBrokenImport(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"app/app.go": "package app\n\nimport \"tmpmod/missing\"\n\nvar _ = missing.X\n",
	})
	_, err := Load(dir, "./...")
	if err == nil {
		t.Fatal("Load succeeded on a module importing a nonexistent package")
	}
	if !strings.Contains(err.Error(), "missing") {
		t.Errorf("error does not name the missing import: %v", err)
	}
}

func TestLoadRejectsEmptyMatch(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"ok/ok.go": "package ok\n\nfunc Fine() {}\n",
	})
	// A pattern for a directory that does not exist: go list -e reports
	// it as a pseudo-package error that Load must surface.
	if _, err := Load(dir, "./nosuchdir/..."); err == nil {
		t.Fatal("Load succeeded on a pattern naming a nonexistent directory")
	} else if !strings.Contains(err.Error(), "nosuchdir") {
		t.Errorf("error does not name the bad pattern: %v", err)
	}
	// A directory that exists but holds no Go packages: go list matches
	// nothing without an error, which must not pass as a silent success.
	if err := os.MkdirAll(filepath.Join(dir, "emptydir"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, "./emptydir/..."); err == nil {
		t.Fatal("Load succeeded on a pattern matching no packages")
	} else if !strings.Contains(err.Error(), "matched no packages") &&
		!strings.Contains(err.Error(), "emptydir") {
		t.Errorf("error does not mention the empty match: %v", err)
	}
}

func TestLoadFixtureRejectsEmptyDir(t *testing.T) {
	if _, err := LoadFixture(t.TempDir()); err == nil {
		t.Fatal("LoadFixture succeeded on a directory with no Go files")
	}
}
