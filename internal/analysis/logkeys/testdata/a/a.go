// Package a exercises logkeys against real log/slog call shapes.
package a

import (
	"context"
	"log/slog"
	"time"
)

const constKey = "query_ms" // constants and constant expressions are fine

func good(log *slog.Logger, d time.Duration) {
	slog.Info("served", "trace_id", "abc", "rows", 3)
	slog.Warn("slow", slog.String("kind", "select"), slog.Duration("elapsed", d))
	slog.ErrorContext(context.Background(), "failed", "error", "boom")
	log.Info("ok", constKey, 12.5)
	log.Log(context.Background(), slog.LevelInfo, "leveled", "attempt_n", 2)
	log.With("session_id", 7).Debug("scoped")
	_ = slog.Group("req", "method_name", "GET", slog.Int("status", 200))
	_ = slog.Any("payload_v2", nil)
}

func badCase(log *slog.Logger) {
	slog.Info("served", "traceId", "abc")         // want `snake_case`
	slog.Warn("slow", slog.String("Kind", "x"))   // want `snake_case`
	log.Error("failed", "trace-id", "abc")        // want `snake_case`
	_ = slog.Group("req", "Method", "GET")        // want `snake_case`
	_ = slog.Int64("rows_", 1)                    // want `snake_case`
	log.With("2fast", true).Info("scoped")        // want `snake_case`
	slog.Info("served", "_trace", 1)              // want `snake_case`
}

func badDynamic(log *slog.Logger, key string) {
	slog.Info("served", key, "abc")          // want `compile-time string constant`
	_ = slog.String(key, "v")                // want `compile-time string constant`
	log.Debug("dyn", "ok_key", 1, key, 2)    // want `compile-time string constant`
}

func spread(log *slog.Logger, args []any) {
	log.Info("passthrough", args...) // spread: statically uncheckable, skipped
}
