// Package logkeys pins the structured-logging contract: every
// attribute key passed to log/slog — the variadic key/value pairs of
// Debug/Info/Warn/Error (and their Context/Log/With variants) and the
// key argument of the Attr constructors (slog.String, slog.Int,
// slog.Group, ...) — must be a compile-time constant string in
// snake_case.
//
// Dynamic keys make log lines un-greppable and explode index
// cardinality in downstream aggregators; mixed-case or kebab-case keys
// fracture queries ("traceId" vs "trace_id") across packages. With the
// keys constant and uniform, a trace_id logged by the engine joins
// against sys.traces and the client's output by simple string
// equality.
package logkeys

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"

	"repro/internal/analysis"
)

// Analyzer is the logkeys analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "logkeys",
	Doc:  "require slog attribute keys to be compile-time constant snake_case strings",
	Run:  run,
}

var keyRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// pairFuncs maps log/slog functions (and identically named Logger
// methods) taking variadic key/value pairs to the index of the first
// pair argument. Method receivers are not in CallExpr.Args, so one
// table serves both forms.
var pairFuncs = map[string]int{
	"Debug": 1, "Info": 1, "Warn": 1, "Error": 1,
	"DebugContext": 2, "InfoContext": 2, "WarnContext": 2, "ErrorContext": 2,
	"Log":   3,
	"With":  0,
	"Group": 1,
}

// keyFuncs are the Attr constructors whose first argument is a key.
var keyFuncs = map[string]bool{
	"String": true, "Int": true, "Int64": true, "Uint64": true,
	"Float64": true, "Bool": true, "Time": true, "Duration": true,
	"Any": true, "Group": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if ok {
				checkCall(pass, call)
			}
			return true
		})
	}
	return nil
}

// checkCall validates one call if it resolves into log/slog.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	var obj types.Object
	if selection := pass.TypesInfo.Selections[sel]; selection != nil {
		obj = selection.Obj() // method: logger.Info(...)
	} else {
		obj = pass.TypesInfo.Uses[sel.Sel] // package func: slog.Info(...)
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "log/slog" {
		return
	}
	name := fn.Name()
	if keyFuncs[name] && len(call.Args) > 0 {
		checkKey(pass, call.Args[0], name)
	}
	if start, ok := pairFuncs[name]; ok {
		checkPairs(pass, call, start)
	}
}

// checkPairs walks the variadic tail: a slog.Attr consumes one slot,
// anything else is a key (validated) followed by its value. A spread
// (`args...`) cannot be checked statically and is skipped.
func checkPairs(pass *analysis.Pass, call *ast.CallExpr, start int) {
	if call.Ellipsis.IsValid() {
		return
	}
	for i := start; i < len(call.Args); {
		if tv, ok := pass.TypesInfo.Types[call.Args[i]]; ok && isSlogAttr(tv.Type) {
			i++
			continue
		}
		checkKey(pass, call.Args[i], "key/value pair")
		i += 2
	}
}

// checkKey requires expr to be a constant snake_case string.
func checkKey(pass *analysis.Pass, expr ast.Expr, where string) {
	tv := pass.TypesInfo.Types[expr]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(expr.Pos(),
			"slog key in %s must be a compile-time string constant; dynamic keys make logs un-greppable and unbounded in cardinality", where)
		return
	}
	key := constant.StringVal(tv.Value)
	if !keyRE.MatchString(key) {
		pass.Reportf(expr.Pos(),
			"slog key %q must be snake_case (want ^[a-z][a-z0-9]*(_[a-z0-9]+)*$) so lines join across packages", key)
	}
}

// isSlogAttr reports whether t is log/slog.Attr.
func isSlogAttr(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Attr" && obj.Pkg() != nil && obj.Pkg().Path() == "log/slog"
}
