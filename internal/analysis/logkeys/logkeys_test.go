package logkeys

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestLogKeys(t *testing.T) {
	analysistest.Run(t, Analyzer, "testdata/a")
}

// TestRealLoggingCallers runs the analyzer over every package that
// emits structured log lines: the engine's slow-query logging, the
// daemon, and the obs flight handler must all use constant snake_case
// keys, or their lines stop joining against sys.traces.
func TestRealLoggingCallers(t *testing.T) {
	pkgs, err := analysis.Load("../../..",
		"./internal/engine/db", "./internal/engine/obs", "./cmd/twmd")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
