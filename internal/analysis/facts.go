package analysis

import (
	"fmt"
	"go/types"
	"sort"
)

// Fact is a piece of knowledge an analyzer derives while analyzing one
// package and wants visible when it later analyzes a dependent package
// — the cross-package half of a flow-sensitive invariant. A fact is
// keyed by the object it describes (a function, a type, an interface
// method, a struct field); because packages are type-checked from
// source while their dependencies come in through export data, object
// *identity* differs between the defining and the importing universe,
// so facts are keyed by the object's stable string key (see ObjectKey)
// rather than by pointer.
//
// Facts only flow bottom-up: Run visits packages in dependency order,
// so an analyzer sees the facts of everything its current package
// imports, never the reverse.
type Fact interface {
	// AFact is a marker; it tags a type as usable in the fact store.
	AFact()
}

// keyedFact is one (key, fact) pair held by the store.
type keyedFact struct {
	key  string
	fact Fact
}

// Facts is the store shared by every analyzer invocation of one Run.
// Run is sequential, so the store is not synchronized.
type Facts struct {
	byKey map[string][]Fact
	all   []keyedFact
}

// NewFacts returns an empty store.
func NewFacts() *Facts {
	return &Facts{byKey: make(map[string][]Fact)}
}

// Export records fact under an arbitrary string key. Most callers
// should prefer ExportObject; raw keys exist for facts about things
// that are not objects (e.g. a registered metric name).
func (f *Facts) Export(key string, fact Fact) {
	f.byKey[key] = append(f.byKey[key], fact)
	f.all = append(f.all, keyedFact{key: key, fact: fact})
}

// ExportObject records fact about obj, keyed by ObjectKey(obj).
func (f *Facts) ExportObject(obj types.Object, fact Fact) {
	f.Export(ObjectKey(obj), fact)
}

// LookupFact returns the first fact of type T recorded under key.
func LookupFact[T Fact](f *Facts, key string) (T, bool) {
	var zero T
	for _, fact := range f.byKey[key] {
		if t, ok := fact.(T); ok {
			return t, true
		}
	}
	return zero, false
}

// LookupObjectFact is LookupFact keyed by ObjectKey(obj).
func LookupObjectFact[T Fact](f *Facts, obj types.Object) (T, bool) {
	return LookupFact[T](f, ObjectKey(obj))
}

// FactsFor returns every fact of type T recorded under key, in export
// order (a key can carry several facts of one type — e.g. a function
// that acquires two different annotated locks).
func FactsFor[T Fact](f *Facts, key string) []T {
	var out []T
	for _, fact := range f.byKey[key] {
		if t, ok := fact.(T); ok {
			out = append(out, t)
		}
	}
	return out
}

// AllFacts returns every (key, fact) pair whose fact has type T, in
// export order. Analyzers use it to enumerate facts whose keys they
// cannot predict (e.g. every interface method tainted anywhere).
func AllFacts[T Fact](f *Facts) []struct {
	Key  string
	Fact T
} {
	var out []struct {
		Key  string
		Fact T
	}
	for _, kf := range f.all {
		if t, ok := kf.fact.(T); ok {
			out = append(out, struct {
				Key  string
				Fact T
			}{kf.key, t})
		}
	}
	return out
}

// Keys returns every key holding at least one fact, sorted; tests use
// it to assert what a pass exported.
func (f *Facts) Keys() []string {
	out := make([]string, 0, len(f.byKey))
	for k := range f.byKey {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders the store for debugging.
func (f *Facts) String() string {
	return fmt.Sprintf("facts(%d keys, %d facts)", len(f.byKey), len(f.all))
}

// ObjectKey renders the stable cross-universe key of an object:
// "pkgpath.Name" for package-level objects, "pkgpath.Recv.Name" for
// methods (the receiver's named type, pointers stripped). Two objects
// describing the same source declaration — one from type-checking the
// source, one from reading export data — produce the same key.
func ObjectKey(obj types.Object) string {
	if obj == nil {
		return ""
	}
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path() + "."
	}
	if fn, ok := obj.(*types.Func); ok {
		if recv := recvTypeName(fn); recv != "" {
			return pkg + recv + "." + fn.Name()
		}
	}
	return pkg + obj.Name()
}

// FieldKey renders the key of field name on the struct behind recv
// (pointers stripped): "pkgpath.Type.field". Empty if recv is not a
// named type.
func FieldKey(recv types.Type, field string) string {
	n := namedOf(recv)
	if n == nil {
		return ""
	}
	return ObjectKey(n.Obj()) + "." + field
}

// recvTypeName returns the name of fn's receiver type ("" for plain
// functions and receivers that are not named types).
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if n := namedOf(sig.Recv().Type()); n != nil {
		return n.Obj().Name()
	}
	return ""
}

// namedOf strips pointers and returns the named type behind t, if any.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
