package metricscontract

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestMetricsContract(t *testing.T) {
	analysistest.Run(t, Analyzer, "testdata/a")
}

// TestRealObsAndClients runs the analyzer over every package that
// registers metrics or inspects wire codes: names must be unique
// program-wide and the client's code switch exhaustive.
func TestRealObsAndClients(t *testing.T) {
	pkgs, err := analysis.Load("../../..",
		"./internal/engine/obs", "./internal/server", "./pkg/client")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
