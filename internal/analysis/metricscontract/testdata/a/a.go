// Package a exercises metricscontract with a local Registry lookalike
// and a coded error type mirroring the wire package's conventions.
package a

// Registry mimics obs.Registry (matched by type name + method set).
type Registry struct{}

func (r *Registry) Counter(name, help string) int               { return 0 }
func (r *Registry) Gauge(name, help string) int                 { return 0 }
func (r *Registry) Histogram(name, help string, b []float64) int { return 0 }

var reg Registry

const base = "engine_ok"

var (
	good   = reg.Counter("engine_good_total", "fine")
	concat = reg.Counter(base+"_total", "constant concatenation is fine")
	dup    = reg.Gauge("engine_good_total", "") // want `registered more than once`
	camel  = reg.Counter("engineBadName", "")   // want `snake_case`
	bare   = reg.Counter("queries_total", "")   // want `engine_ prefix`
	upper  = reg.Counter("engine_Bad", "")      // want `snake_case`
)

func dynamic(name string) int {
	return reg.Counter(name, "") // want `compile-time string constant`
}

// Error mirrors wire.Error: a Code field plus Code* constants.
type Error struct {
	Code    string
	Message string
}

const (
	CodeA = "a"
	CodeB = "b"
	CodeC = "c"
	// CodeShardUnavailable mirrors the wire code the cluster layer
	// added: growing the constant set must break every non-exhaustive
	// switch below, exactly how real client switches learn of it.
	CodeShardUnavailable = "shard_unavailable"
)

func classifyMissing(e *Error) string {
	switch e.Code { // want `does not handle: CodeC, CodeShardUnavailable`
	case CodeA:
		return "a"
	case CodeB:
		return "b"
	}
	return ""
}

func classifyAll(e Error) string {
	switch e.Code {
	case CodeA, CodeB:
		return "ab"
	case "c": // literal value counts
		return "c"
	case CodeShardUnavailable:
		return "shard"
	}
	return ""
}

func classifyDefaulted(e *Error) string {
	switch e.Code { // want `does not handle: CodeB, CodeC, CodeShardUnavailable`
	case CodeA:
		return "a"
	default:
		return "?"
	}
}

var (
	_ = good
	_ = concat
	_ = dup
	_ = camel
	_ = bare
	_ = upper
	_ = dynamic
	_ = classifyMissing
	_ = classifyAll
	_ = classifyDefaulted
)
