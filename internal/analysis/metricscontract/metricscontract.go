// Package metricscontract pins down two operability contracts:
//
// Metric registration: every Counter/Gauge/Histogram registered on a
// Registry (the obs package's type, matched by convention so fixtures
// can define their own) must use a compile-time constant name —
// dynamic names defeat dashboards and make cardinality unauditable —
// in engine_-prefixed snake_case, and each name must be registered
// exactly once program-wide. Uniqueness is enforced across packages
// through RegisteredMetric facts keyed "metric:<name>".
//
// Wire-code mapping: a switch over a wire error's .Code field must
// handle every Code* constant its package declares. The wire protocol
// grows codes over time; a client-side switch with a default silently
// lumps new codes into the fallback bucket, so the analyzer requires
// an explicit case per code (matched by constant value, so both named
// constants and literal strings count) and treats a default as
// non-satisfying.
package metricscontract

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the metricscontract analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "metricscontract",
	Doc: "enforce constant engine_-prefixed snake_case metric names, " +
		"single registration per name, and exhaustive switches over wire error codes",
	Run: run,
}

// RegisteredMetric marks a metric name (keyed "metric:<name>") as
// registered; At records where.
type RegisteredMetric struct{ At string }

func (RegisteredMetric) AFact() {}

var metricNameRE = regexp.MustCompile(`^engine(_[a-z0-9]+)+$`)

// registerMethods are the Registry methods whose first argument is a
// metric name.
var registerMethods = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkRegistration(pass, n)
			case *ast.SwitchStmt:
				checkCodeSwitch(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkRegistration validates one Registry.Counter/Gauge/Histogram
// call: constant name, naming scheme, program-wide uniqueness.
func checkRegistration(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !registerMethods[sel.Sel.Name] || len(call.Args) == 0 {
		return
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil {
		return
	}
	fnObj, ok := selection.Obj().(*types.Func)
	if !ok {
		return
	}
	recv := fnObj.Type().(*types.Signature).Recv()
	if recv == nil {
		return
	}
	named := namedOf(recv.Type())
	if named == nil || named.Obj().Name() != "Registry" {
		return
	}
	tv := pass.TypesInfo.Types[call.Args[0]]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(call.Args[0].Pos(),
			"metric name passed to %s must be a compile-time string constant; dynamic names defeat dashboards and cardinality audits",
			sel.Sel.Name)
		return
	}
	name := constant.StringVal(tv.Value)
	if !metricNameRE.MatchString(name) {
		pass.Reportf(call.Args[0].Pos(),
			"metric name %q must be snake_case with the engine_ prefix (want ^engine(_[a-z0-9]+)+$)", name)
		return
	}
	key := "metric:" + name
	if prev, ok := analysis.LookupFact[RegisteredMetric](pass.Facts, key); ok {
		pass.Reportf(call.Args[0].Pos(),
			"metric %q is registered more than once (first registration at %s)", name, prev.At)
		return
	}
	pass.Facts.Export(key, RegisteredMetric{At: pass.Fset.Position(call.Pos()).String()})
}

// checkCodeSwitch validates one `switch x.Code { ... }` against the
// Code* constants of the package declaring x's type.
func checkCodeSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	sel, ok := ast.Unparen(sw.Tag).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Code" {
		return
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return
	}
	named := namedOf(selection.Recv())
	if named == nil || named.Obj().Pkg() == nil {
		return
	}
	codes := codeConstants(named.Obj().Pkg())
	if len(codes) < 2 {
		return // not a coded-error package
	}
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok || cc.List == nil {
			continue // default clause: present but never satisfying
		}
		for _, expr := range cc.List {
			tv := pass.TypesInfo.Types[expr]
			if tv.Value != nil && tv.Value.Kind() == constant.String {
				delete(codes, constant.StringVal(tv.Value))
			}
		}
	}
	if len(codes) == 0 {
		return
	}
	var missing []string
	for _, name := range codes {
		missing = append(missing, name)
	}
	sort.Strings(missing)
	pass.Reportf(sw.Pos(),
		"switch on %s.Code does not handle: %s — add explicit cases; a default cannot tell new wire codes apart",
		named.Obj().Name(), strings.Join(missing, ", "))
}

// codeConstants collects pkg's exported Code* string constants, keyed
// by value.
func codeConstants(pkg *types.Package) map[string]string {
	out := map[string]string{}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "Code") || name == "Code" {
			continue
		}
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() || c.Val().Kind() != constant.String {
			continue
		}
		out[constant.StringVal(c.Val())] = name
	}
	return out
}

// namedOf strips pointers and returns the named type behind t.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
