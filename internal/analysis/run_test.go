package analysis

import (
	"go/ast"
	"strings"
	"testing"
)

// flagfunc reports every function whose name starts with "bad".
var flagfunc = &Analyzer{
	Name: "flagfunc",
	Doc:  "test analyzer: flag functions named bad*",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "bad") {
					pass.Reportf(fd.Pos(), "function %s is bad", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

func TestRunHonorsIgnoreDirectives(t *testing.T) {
	pkg, err := LoadFixture("testdata/ignore")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{flagfunc})
	if err != nil {
		t.Fatal(err)
	}
	byAnalyzer := map[string][]string{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], d.Message)
	}
	// bad1 (trailing ignore) and bad2 (preceding-line ignore) are
	// suppressed; bad3's bare ignore is rejected so its finding stays;
	// bad4's ignore names a different analyzer; bad5 has no ignore.
	want := []string{"function bad3 is bad", "function bad4 is bad", "function bad5 is bad"}
	got := byAnalyzer["flagfunc"]
	if len(got) != len(want) {
		t.Fatalf("flagfunc diagnostics = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("flagfunc diagnostic %d = %q, want %q", i, got[i], want[i])
		}
	}
	// The bare ignore must itself be reported under the statlint
	// pseudo-analyzer, and must not be suppressible.
	bare := byAnalyzer[IgnoreAnalyzer]
	if len(bare) != 1 || !strings.Contains(bare[0], "reason is required") {
		t.Errorf("bare-ignore rejection = %v, want one 'reason is required' diagnostic", bare)
	}
}

func TestBuildCallGraph(t *testing.T) {
	pkg, err := LoadFixture("testdata/callgraph")
	if err != nil {
		t.Fatal(err)
	}
	g := BuildCallGraph(pkg)
	edges := func(caller string) map[string]Edge {
		out := map[string]Edge{}
		for _, e := range g.Edges[caller] {
			out[e.Callee] = e
		}
		return out
	}
	pathOf := func(name string) string { return pkg.Path + "." + name }

	topEdges := edges(pathOf("top"))
	if _, ok := topEdges[pathOf("mid")]; !ok {
		t.Errorf("missing edge top → mid; have %v", topEdges)
	}
	ring, ok := topEdges[pathOf("ringer.Ring")]
	if !ok {
		t.Fatalf("missing interface edge top → ringer.Ring; have %v", topEdges)
	}
	if !ring.Interface {
		t.Error("ringer.Ring edge not marked as an interface call")
	}
	// The literal's call to (*gong).strike is attributed to top, with
	// the literal recorded on the edge.
	strike, ok := topEdges[pathOf("gong.strike")]
	if !ok {
		t.Fatalf("missing literal-body edge top → gong.strike; have %v", topEdges)
	}
	if strike.Lit == nil {
		t.Error("gong.strike edge does not record its enclosing function literal")
	}
	if _, ok := edges(pathOf("mid"))[pathOf("leaf")]; !ok {
		t.Error("missing edge mid → leaf")
	}
}

func TestCallGraphReaches(t *testing.T) {
	pkg, err := LoadFixture("testdata/callgraph")
	if err != nil {
		t.Fatal(err)
	}
	g := BuildCallGraph(pkg)
	leafKey := pkg.Path + ".leaf"
	chains := g.Reaches(func(callee string) (string, bool) {
		if callee == leafKey {
			return "is the base", true
		}
		return "", false
	})
	if _, ok := chains[pkg.Path+".mid"]; !ok {
		t.Error("mid does not reach leaf")
	}
	top, ok := chains[pkg.Path+".top"]
	if !ok {
		t.Fatal("top does not reach leaf (via mid or the literal's strike)")
	}
	if !strings.Contains(top, "→") || !strings.Contains(top, "is the base") {
		t.Errorf("top's chain %q lacks the rendered path/reason", top)
	}
	if _, ok := chains[pkg.Path+".bell.Ring"]; ok {
		t.Error("bell.Ring spuriously reaches leaf")
	}
}

type testFact struct{ Label string }

func (testFact) AFact() {}

type otherFact struct{ N int }

func (otherFact) AFact() {}

func TestFactsStore(t *testing.T) {
	f := NewFacts()
	f.Export("a.T.M", testFact{Label: "one"})
	f.Export("a.T.M", otherFact{N: 7})
	f.Export("b.F", testFact{Label: "two"})

	got, ok := LookupFact[testFact](f, "a.T.M")
	if !ok || got.Label != "one" {
		t.Errorf("LookupFact[testFact] = %+v, %v", got, ok)
	}
	other, ok := LookupFact[otherFact](f, "a.T.M")
	if !ok || other.N != 7 {
		t.Errorf("LookupFact[otherFact] = %+v, %v", other, ok)
	}
	if _, ok := LookupFact[testFact](f, "missing"); ok {
		t.Error("LookupFact found a fact under an unused key")
	}
	all := AllFacts[testFact](f)
	if len(all) != 2 || all[0].Key != "a.T.M" || all[1].Fact.Label != "two" {
		t.Errorf("AllFacts[testFact] = %+v", all)
	}
}

func TestTopoSortOrdersDependenciesFirst(t *testing.T) {
	// Load two real repo packages given dependent-first: Run must still
	// analyze storage before summary so facts flow bottom-up.
	pkgs, err := Load("../..", "./internal/engine/summary", "./internal/engine/storage")
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram(pkgs)
	idx := map[string]int{}
	for i, p := range prog.Packages {
		idx[p.Path] = i
	}
	if idx["repro/internal/engine/storage"] > idx["repro/internal/engine/summary"] {
		t.Errorf("storage ordered after summary: %v", prog.Packages)
	}
}
