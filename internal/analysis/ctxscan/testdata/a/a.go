// Fixture for the ctxscan analyzer.
package a

import (
	"context"

	"repro/internal/engine/storage"
)

func bad(ctx context.Context, t *storage.Table) error {
	return t.Scan(nil) // want `use ScanContext so the scan observes cancellation`
}

func good(ctx context.Context, t *storage.Table) error {
	return t.ScanContext(ctx, nil)
}

func noCtx(t *storage.Table) error {
	return t.Scan(nil) // no context in scope: allowed
}

func inLiteral(t *storage.Table) func(context.Context) error {
	return func(ctx context.Context) error {
		return t.Scan(nil) // want `use ScanContext so the scan observes cancellation`
	}
}

func inheritedCtx(ctx context.Context, t *storage.Table) error {
	run := func() error {
		return t.Scan(nil) // want `use ScanContext so the scan observes cancellation`
	}
	return run()
}

// scanPartitionOK: the ctx-taking partition scan is the right call.
func scanPartitionOK(ctx context.Context, t *storage.Table) error {
	return t.ScanPartition(ctx, 0, nil)
}
