// Fixture for the ctxscan analyzer.
package a

import (
	"context"

	"repro/internal/engine/db"
	"repro/internal/engine/storage"
)

func bad(ctx context.Context, t *storage.Table) error {
	return t.Scan(nil) // want `use ScanContext so the statement observes cancellation`
}

func good(ctx context.Context, t *storage.Table) error {
	return t.ScanContext(ctx, nil)
}

func noCtx(t *storage.Table) error {
	return t.Scan(nil) // no context in scope: allowed
}

func inLiteral(t *storage.Table) func(context.Context) error {
	return func(ctx context.Context) error {
		return t.Scan(nil) // want `use ScanContext so the statement observes cancellation`
	}
}

func inheritedCtx(ctx context.Context, t *storage.Table) error {
	run := func() error {
		return t.Scan(nil) // want `use ScanContext so the statement observes cancellation`
	}
	return run()
}

// scanPartitionOK: the ctx-taking partition scan is the right call.
func scanPartitionOK(ctx context.Context, t *storage.Table) error {
	return t.ScanPartition(ctx, 0, nil)
}

// Server-handler shape: a ctx is in scope, so every (*db.DB) statement
// entry point must be the *Context variant.
func badExec(ctx context.Context, d *db.DB) error {
	_, err := d.Exec("SELECT 1") // want `use ExecContext so the statement observes cancellation`
	return err
}

func badScript(ctx context.Context, d *db.DB) error {
	_, err := d.ExecScript("SELECT 1; SELECT 2") // want `use ExecScriptContext so the statement observes cancellation`
	return err
}

func badStream(ctx context.Context, d *db.DB) error {
	_, err := d.QueryStream("SELECT 1", nil) // want `use QueryStreamContext so the statement observes cancellation`
	return err
}

func goodExec(ctx context.Context, d *db.DB) error {
	_, err := d.ExecContext(ctx, "SELECT 1")
	return err
}

func execNoCtx(d *db.DB) error {
	_, err := d.Exec("SELECT 1") // no context in scope: allowed
	return err
}

// Prepared-statement path: Prepare and Execute have *Context twins too.
func badPrepare(ctx context.Context, d *db.DB) error {
	_, err := d.Prepare("SELECT 1") // want `use PrepareContext so the statement observes cancellation`
	return err
}

func badExecute(ctx context.Context, p *db.Prepared) error {
	_, err := p.Execute() // want `use ExecuteContext so the statement observes cancellation`
	return err
}

func goodPrepared(ctx context.Context, d *db.DB) error {
	p, err := d.PrepareContext(ctx, "SELECT 1")
	if err != nil {
		return err
	}
	defer p.Close()
	_, err = p.ExecuteContext(ctx)
	return err
}

func preparedNoCtx(d *db.DB, p *db.Prepared) error {
	_, err := p.Execute() // no context in scope: allowed
	return err
}
