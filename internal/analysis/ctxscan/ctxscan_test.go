package ctxscan_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxscan"
)

func TestCtxScan(t *testing.T) {
	analysistest.Run(t, ctxscan.Analyzer, "testdata/a")
}
