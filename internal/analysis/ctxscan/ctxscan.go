// Package ctxscan flags engine calls that ignore an available
// context. The storage layer polls ctx between rows and the db layer
// threads it through the executor (the engine's cancellation invariant
// from the parallel-executor work), but only if callers pass one: a
// function that receives a context.Context and still calls the
// ctx-less (*storage.Table).Scan — or a ctx-less (*db.DB) statement
// entry point like Exec or QueryStream — silently produces an
// uncancellable operation. Server handlers are the motivating case:
// every statement they run must die with the session's context on
// disconnect or shutdown.
package ctxscan

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

const (
	storagePath = "repro/internal/engine/storage"
	dbPath      = "repro/internal/engine/db"
)

// ctxVariants maps ctx-less methods to their context-taking twins,
// keyed by package path then receiver type then method name.
var ctxVariants = map[string]map[string]map[string]string{
	storagePath: {
		"Table": {"Scan": "ScanContext"},
	},
	dbPath: {
		"DB": {
			"Exec":        "ExecContext",
			"ExecScript":  "ExecScriptContext",
			"Run":         "RunContext",
			"QueryStream": "QueryStreamContext",
			"Prepare":     "PrepareContext",
		},
		"Prepared": {
			"Execute": "ExecuteContext",
		},
	},
}

// Analyzer flags ctx-less engine calls ((*storage.Table).Scan and the
// (*db.DB) statement entry points) inside functions that have a
// context.Context parameter in scope.
var Analyzer = &analysis.Analyzer{
	Name: "ctxscan",
	Doc: "report ctx-less engine calls ((*storage.Table).Scan, (*db.DB).Exec/ExecScript/Run/QueryStream/Prepare, " +
		"(*db.Prepared).Execute) in functions that receive a context.Context; such operations cannot be " +
		"cancelled — call the *Context variant instead",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			check(pass, fn.Body, hasCtxParam(pass, fn.Type))
		}
	}
	return nil
}

// check walks a function body; inCtx reports whether a context.Context
// parameter is visible. Function literals with their own ctx parameter
// start a ctx region; literals without one inherit the enclosing state
// (the ctx is still in scope there).
func check(pass *analysis.Pass, body ast.Node, inCtx bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			check(pass, n.Body, inCtx || hasCtxParam(pass, n.Type))
			return false
		case *ast.CallExpr:
			if !inCtx {
				return true
			}
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Selections[sel]
			if obj == nil {
				return true
			}
			m, ok := obj.Obj().(*types.Func)
			if !ok || m.Pkg() == nil {
				return true
			}
			byRecv, ok := ctxVariants[m.Pkg().Path()]
			if !ok {
				return true
			}
			byName, ok := byRecv[receiverNamed(m)]
			if !ok {
				return true
			}
			variant, ok := byName[m.Name()]
			if !ok {
				return true
			}
			pass.Reportf(n.Pos(), "(*%s.%s).%s ignores the context.Context in scope; use %s so the statement observes cancellation",
				m.Pkg().Name(), receiverNamed(m), m.Name(), variant)
		}
		return true
	})
}

// receiverNamed returns the receiver's named-type name ("" if none).
func receiverNamed(m *types.Func) string {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// hasCtxParam reports whether the function type declares a
// context.Context parameter.
func hasCtxParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		if isContext(tv.Type) {
			return true
		}
	}
	return false
}

func isContext(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
