// Package ctxscan flags partition scans that ignore an available
// context. The storage layer polls ctx between rows (the engine's
// cancellation invariant from the parallel-executor work), but only if
// callers pass one: a function that receives a context.Context and
// still calls the ctx-less (*storage.Table).Scan silently produces an
// uncancellable scan — exactly the bug the executor's join path had.
package ctxscan

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

const storagePath = "repro/internal/engine/storage"

// Analyzer flags (*storage.Table).Scan calls inside functions that
// have a context.Context parameter in scope.
var Analyzer = &analysis.Analyzer{
	Name: "ctxscan",
	Doc: "report ctx-less (*storage.Table).Scan calls in functions that receive a context.Context; " +
		"such scans cannot be cancelled — call ScanContext(ctx, fn) instead",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			check(pass, fn.Body, hasCtxParam(pass, fn.Type))
		}
	}
	return nil
}

// check walks a function body; inCtx reports whether a context.Context
// parameter is visible. Function literals with their own ctx parameter
// start a ctx region; literals without one inherit the enclosing state
// (the ctx is still in scope there).
func check(pass *analysis.Pass, body ast.Node, inCtx bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			check(pass, n.Body, inCtx || hasCtxParam(pass, n.Type))
			return false
		case *ast.CallExpr:
			if !inCtx {
				return true
			}
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Selections[sel]
			if obj == nil {
				return true
			}
			m, ok := obj.Obj().(*types.Func)
			if !ok || m.Name() != "Scan" || m.Pkg() == nil || m.Pkg().Path() != storagePath {
				return true
			}
			if named := receiverNamed(m); named != "Table" {
				return true
			}
			pass.Reportf(n.Pos(), "(*storage.Table).Scan ignores the context.Context in scope; use ScanContext so the scan observes cancellation")
		}
		return true
	})
}

// receiverNamed returns the receiver's named-type name ("" if none).
func receiverNamed(m *types.Func) string {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// hasCtxParam reports whether the function type declares a
// context.Context parameter.
func hasCtxParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		if isContext(tv.Type) {
			return true
		}
	}
	return false
}

func isContext(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
