package lockreent

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestLockReent(t *testing.T) {
	analysistest.Run(t, Analyzer, "testdata/a")
}

// TestRealStorageAndSummary runs the analyzer over the real storage
// and summary packages: the annotated Table.mu contract must hold,
// including the cross-package fact flow (summary's observer entry is
// invoked under the table lock).
func TestRealStorageAndSummary(t *testing.T) {
	pkgs, err := analysis.Load("../../..",
		"./internal/engine/storage", "./internal/engine/summary")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
