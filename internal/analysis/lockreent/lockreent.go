// Package lockreent machine-checks the engine's lock re-entrancy
// contract. A mutex field annotated `//statlint:guards <field>` on its
// owning type (storage.Table's `mu`) defines a *guarded lock*; the
// analyzer computes, bottom-up over the whole program, the transitive
// set of functions that acquire that lock, and flags any call path
// that re-enters the set from a context already holding it:
//
//   - the lexical region between a Lock/RLock call and its matching
//     non-deferred Unlock (deferred unlocks hold to function end),
//   - methods whose name ends in "Locked" on the guarded type (the
//     repo's caller-must-hold naming convention),
//   - functions annotated `//statlint:locked Type.field`,
//   - implementations of interface methods that some package invokes
//     while holding the lock (observer callbacks — exported as
//     CalledUnderLock facts and matched against implementations in
//     every dependent package), and
//   - function literals passed to a function that invokes its callback
//     parameter under the lock (exported as CallsParamUnderLock facts;
//     storage.Table.Sync and the ScanPartition family).
//
// This is the static version of the deadlock warning documented on
// storage.Table: an observer callback or *Locked method calling back
// into Insert/Scan/Rows deadlocks on the table's own RWMutex.
//
// Known approximations: calls through non-parameter function values
// are not tracked, and a literal passed into `go func(){...}` under a
// lock is treated as running under it even though the goroutine may
// outlive the critical section (over-approximation in the safe
// direction).
package lockreent

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the lockreent analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockreent",
	Doc: "flag call paths that re-acquire a //statlint:guards-annotated mutex " +
		"from observer callbacks, *Locked methods, or lock-holding regions",
	Run: run,
}

// GuardedLock marks a lock key ("pkgpath.Type.field") as annotated
// with //statlint:guards, so dependent packages recognize acquisitions
// of an exported guarded mutex.
type GuardedLock struct{}

func (GuardedLock) AFact() {}

// Acquires marks a function as acquiring the guarded lock Lock, either
// directly or through a callee; Via is the human-readable call chain.
type Acquires struct{ Lock, Via string }

func (Acquires) AFact() {}

// CalledUnderLock marks an interface method as invoked somewhere while
// Lock is held; implementations in dependent packages become
// under-lock contexts.
type CalledUnderLock struct{ Lock string }

func (CalledUnderLock) AFact() {}

// CallsParamUnderLock marks a function as invoking its Param'th
// parameter (a func value) while Lock is held; function literals at
// its call sites become under-lock contexts.
type CallsParamUnderLock struct {
	Lock  string
	Param int
}

func (CallsParamUnderLock) AFact() {}

// lockEvent is one Lock/Unlock-family call on a guarded lock inside a
// function body.
type lockEvent struct {
	pos      token.Pos
	lock     string
	acquire  bool
	deferred bool
}

// lockCtx is one region of code known to run with lock held. start/end
// of 0 means the whole function body.
type lockCtx struct {
	fn         string
	lock       string
	start, end token.Pos
	what       string // human-readable reason the lock is held here
}

type checker struct {
	pass *analysis.Pass
	g    *analysis.CallGraph

	guarded []string                        // known guarded lock keys, sorted
	events  map[string][]lockEvent          // funcKey → lock ops in source order
	direct  map[string]map[string]token.Pos // funcKey → lock → first acquire
	chains  map[string]map[string]string    // lock → funcKey → acquisition chain

	queue    []lockCtx
	ctxSeen  map[string]bool
	reported map[string]bool
	// seenIface / seenParam / seenSite dedupe fact exports and call-site
	// expansion across fixpoint rounds.
	seenIface map[string]bool
	seenParam map[string]bool
	seenSite  map[string]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:      pass,
		g:         pass.CallGraph(),
		events:    make(map[string][]lockEvent),
		direct:    make(map[string]map[string]token.Pos),
		chains:    make(map[string]map[string]string),
		ctxSeen:   make(map[string]bool),
		reported:  make(map[string]bool),
		seenIface: make(map[string]bool),
		seenParam: make(map[string]bool),
		seenSite:  make(map[string]bool),
	}
	c.collectGuards()
	c.scanLockOps()
	c.computeAcquirers()
	c.seedNamedContexts()
	c.seedRegionContexts()
	for changed := true; changed; {
		changed = c.seedImplContexts()
		changed = c.seedCallbackSites() || changed
		for len(c.queue) > 0 {
			ctx := c.queue[0]
			c.queue = c.queue[1:]
			c.processCtx(ctx)
			changed = true
		}
	}
	return nil
}

// collectGuards parses //statlint:guards directives on type
// declarations, validates the named field is a sync.Mutex or
// sync.RWMutex, and exports a GuardedLock fact per lock. It then
// merges in guarded locks exported by dependencies.
func (c *checker) collectGuards() {
	seen := map[string]bool{}
	add := func(lock string) {
		if !seen[lock] {
			seen[lock] = true
			c.guarded = append(c.guarded, lock)
		}
	}
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				field, found := directiveArg(gd.Doc, ts.Doc, ts.Comment)
				if !found {
					continue
				}
				obj, ok := c.pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				if !hasMutexField(obj.Type(), field) {
					c.pass.Reportf(ts.Pos(),
						"statlint:guards: type %s has no sync.Mutex or sync.RWMutex field %q", obj.Name(), field)
					continue
				}
				lock := analysis.ObjectKey(obj) + "." + field
				c.pass.Facts.Export(lock, GuardedLock{})
				add(lock)
			}
		}
	}
	for _, kf := range analysis.AllFacts[GuardedLock](c.pass.Facts) {
		add(kf.Key)
	}
	sort.Strings(c.guarded)
}

// directiveArg finds the first //statlint:guards directive in any of
// the comment groups and returns its argument (the field name).
func directiveArg(groups ...*ast.CommentGroup) (string, bool) {
	const prefix = "//statlint:guards"
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, cmt := range cg.List {
			if !strings.HasPrefix(cmt.Text, prefix) {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(cmt.Text, prefix))
			if len(fields) > 0 {
				return fields[0], true
			}
			return "", true
		}
	}
	return "", false
}

// hasMutexField reports whether t's underlying struct has a field
// named field of type sync.Mutex or sync.RWMutex.
func hasMutexField(t types.Type, field string) bool {
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != field {
			continue
		}
		n, ok := f.Type().(*types.Named)
		if !ok || n.Obj().Pkg() == nil {
			return false
		}
		return n.Obj().Pkg().Path() == "sync" &&
			(n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex")
	}
	return false
}

// isGuarded reports whether lock is a known guarded lock key.
func (c *checker) isGuarded(lock string) bool {
	for _, g := range c.guarded {
		if g == lock {
			return true
		}
	}
	return false
}

// scanLockOps records every Lock/RLock/Unlock/RUnlock call on a
// guarded lock per function, with deferredness.
func (c *checker) scanLockOps() {
	for _, fn := range c.g.Functions() {
		decl := c.g.Decls[fn]
		deferred := map[*ast.CallExpr]bool{}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if ds, ok := n.(*ast.DeferStmt); ok {
				deferred[ds.Call] = true
			}
			return true
		})
		var events []lockEvent
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			var acquire bool
			switch sel.Sel.Name {
			case "Lock", "RLock", "TryLock", "TryRLock":
				acquire = true
			case "Unlock", "RUnlock":
			default:
				return true
			}
			lock := c.guardedLockOf(sel.X)
			if lock == "" {
				return true
			}
			events = append(events, lockEvent{
				pos:      call.Pos(),
				lock:     lock,
				acquire:  acquire,
				deferred: deferred[call],
			})
			return true
		})
		sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
		if len(events) > 0 {
			c.events[fn] = events
			for _, ev := range events {
				if ev.acquire {
					if c.direct[fn] == nil {
						c.direct[fn] = map[string]token.Pos{}
					}
					if _, ok := c.direct[fn][ev.lock]; !ok {
						c.direct[fn][ev.lock] = ev.pos
					}
				}
			}
		}
	}
}

// guardedLockOf resolves an expression like t.mu to a guarded lock key
// ("" if the expression is not a guarded field selection).
func (c *checker) guardedLockOf(x ast.Expr) string {
	sel, ok := ast.Unparen(x).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	selection := c.pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return ""
	}
	lock := analysis.FieldKey(selection.Recv(), sel.Sel.Name)
	if lock == "" || !c.isGuarded(lock) {
		return ""
	}
	return lock
}

// computeAcquirers closes the direct-acquirer set over the call graph
// per lock (merging imported Acquires facts for cross-package callees)
// and exports Acquires facts for every local acquirer.
func (c *checker) computeAcquirers() {
	for _, lock := range c.guarded {
		reach := c.g.Reaches(func(callee string) (string, bool) {
			if _, ok := c.direct[callee][lock]; ok {
				return "acquires " + shortLock(lock), true
			}
			for _, f := range analysis.FactsFor[Acquires](c.pass.Facts, callee) {
				if f.Lock == lock {
					return "acquires " + shortLock(lock), true
				}
			}
			return "", false
		})
		m := map[string]string{}
		for _, fn := range c.g.Functions() {
			if _, ok := c.direct[fn][lock]; ok {
				m[fn] = analysis.ShortName(fn) + " acquires " + shortLock(lock) + " directly"
			} else if via, ok := reach[fn]; ok {
				m[fn] = via
			}
			if via, ok := m[fn]; ok {
				c.pass.Facts.Export(fn, Acquires{Lock: lock, Via: via})
			}
		}
		c.chains[lock] = m
	}
}

// acquisitionChain reports whether callee acquires lock (locally or
// per an imported fact), returning the chain for the report.
func (c *checker) acquisitionChain(lock, callee string) (string, bool) {
	if via, ok := c.chains[lock][callee]; ok {
		return via, true
	}
	for _, f := range analysis.FactsFor[Acquires](c.pass.Facts, callee) {
		if f.Lock == lock {
			return f.Via, true
		}
	}
	return "", false
}

// seedNamedContexts queues whole-body contexts for *Locked-suffix
// methods of guarded types and //statlint:locked-annotated functions.
func (c *checker) seedNamedContexts() {
	for _, fn := range c.g.Functions() {
		decl := c.g.Decls[fn]
		if decl.Recv != nil && strings.HasSuffix(decl.Name.Name, "Locked") {
			fnObj, ok := c.pass.TypesInfo.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := fnObj.Type().(*types.Signature).Recv()
			if recv == nil {
				continue
			}
			n := namedOf(recv.Type())
			if n == nil {
				continue
			}
			typeKey := analysis.ObjectKey(n.Obj())
			for _, lock := range c.guarded {
				if field, ok := strings.CutPrefix(lock, typeKey+"."); ok && !strings.Contains(field, ".") {
					c.enqueue(lockCtx{fn: fn, lock: lock,
						what: analysis.ShortName(fn) + " is a *Locked method (caller must hold " + shortLock(lock) + ")"})
				}
			}
		}
		if arg, ok := lockedDirective(decl); ok {
			lock := arg
			if !strings.Contains(arg, "/") {
				lock = c.pass.Pkg.Path() + "." + arg
			}
			if !c.isGuarded(lock) {
				c.pass.Reportf(decl.Pos(), "statlint:locked: %q does not name a //statlint:guards-annotated lock", arg)
				continue
			}
			c.enqueue(lockCtx{fn: fn, lock: lock,
				what: analysis.ShortName(fn) + " is annotated //statlint:locked " + arg})
		}
	}
}

// lockedDirective extracts a //statlint:locked argument from a
// function's doc comment.
func lockedDirective(decl *ast.FuncDecl) (string, bool) {
	const prefix = "//statlint:locked"
	if decl.Doc == nil {
		return "", false
	}
	for _, cmt := range decl.Doc.List {
		if !strings.HasPrefix(cmt.Text, prefix) {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(cmt.Text, prefix))
		if len(fields) > 0 {
			return fields[0], true
		}
		return "", true
	}
	return "", false
}

// seedRegionContexts queues the lexical lock-held regions: from each
// acquire to its matching non-deferred release, or to the end of the
// body when the release is deferred (the repo's dominant pattern).
func (c *checker) seedRegionContexts() {
	for _, fn := range c.g.Functions() {
		events := c.events[fn]
		if len(events) == 0 {
			continue
		}
		body := c.g.Decls[fn].Body
		held := map[string]token.Pos{} // lock → region start
		for _, ev := range events {
			if ev.acquire {
				if !ev.deferred {
					if _, already := held[ev.lock]; !already {
						held[ev.lock] = ev.pos
					}
				}
				continue
			}
			if ev.deferred {
				continue // deferred unlock: region runs to end of body
			}
			if start, ok := held[ev.lock]; ok {
				c.enqueueRegion(fn, ev.lock, start, ev.pos)
				delete(held, ev.lock)
			}
		}
		for lock, start := range held {
			c.enqueueRegion(fn, lock, start, body.End())
		}
	}
}

func (c *checker) enqueueRegion(fn, lock string, start, end token.Pos) {
	line := c.pass.Fset.Position(start).Line
	c.enqueue(lockCtx{fn: fn, lock: lock, start: start, end: end,
		what: fmt.Sprintf("%s holds it since line %d", analysis.ShortName(fn), line)})
}

// seedImplContexts turns CalledUnderLock facts (interface methods
// invoked under a lock, possibly in another package) into whole-body
// contexts for every local implementation. Returns true when a new
// context was queued.
func (c *checker) seedImplContexts() bool {
	changed := false
	for _, kf := range analysis.AllFacts[CalledUnderLock](c.pass.Facts) {
		dedupe := "impl\x00" + kf.Key + "\x00" + kf.Fact.Lock
		if c.seenSite[dedupe] {
			continue
		}
		c.seenSite[dedupe] = true
		pkgPath, ifaceName, method, ok := splitMethodKey(kf.Key)
		if !ok {
			continue
		}
		iface := c.lookupInterface(pkgPath, ifaceName)
		if iface == nil {
			continue
		}
		scope := c.pass.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if types.IsInterface(t) {
				continue
			}
			if !types.Implements(t, iface) && !types.Implements(types.NewPointer(t), iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, c.pass.Pkg, method)
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() != c.pass.Pkg {
				continue
			}
			fnKey := analysis.ObjectKey(fn)
			if _, ok := c.g.Decls[fnKey]; !ok {
				continue
			}
			if c.enqueue(lockCtx{fn: fnKey, lock: kf.Fact.Lock,
				what: analysis.ShortName(fnKey) + " implements " + analysis.ShortName(kf.Key) +
					", which is invoked with " + shortLock(kf.Fact.Lock) + " held"}) {
				changed = true
			}
		}
	}
	return changed
}

// splitMethodKey splits "pkgpath.Type.Method" (pkgpath may contain
// dots and slashes) into its components.
func splitMethodKey(key string) (pkgPath, typeName, method string, ok bool) {
	tail := key
	prefix := ""
	if i := strings.LastIndexByte(key, '/'); i >= 0 {
		prefix, tail = key[:i+1], key[i+1:]
	}
	parts := strings.Split(tail, ".")
	if len(parts) != 3 {
		return "", "", "", false
	}
	return prefix + parts[0], parts[1], parts[2], true
}

// lookupInterface resolves an interface type by package path and name,
// searching the current package and its transitive imports.
func (c *checker) lookupInterface(pkgPath, name string) *types.Interface {
	var scope *types.Scope
	if pkgPath == c.pass.Pkg.Path() {
		scope = c.pass.Pkg.Scope()
	} else if p := findImport(c.pass.Pkg, pkgPath, map[string]bool{}); p != nil {
		scope = p.Scope()
	}
	if scope == nil {
		return nil
	}
	tn, ok := scope.Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	iface, _ := tn.Type().Underlying().(*types.Interface)
	return iface
}

// findImport locates path among pkg's transitive imports.
func findImport(pkg *types.Package, path string, seen map[string]bool) *types.Package {
	for _, imp := range pkg.Imports() {
		if imp.Path() == path {
			return imp
		}
		if seen[imp.Path()] {
			continue
		}
		seen[imp.Path()] = true
		if found := findImport(imp, path, seen); found != nil {
			return found
		}
	}
	return nil
}

// seedCallbackSites expands CallsParamUnderLock facts at local call
// sites: a function literal passed in the marked position becomes an
// under-lock context; a plain parameter passed through propagates the
// fact to the caller. Returns true on any new context or fact.
func (c *checker) seedCallbackSites() bool {
	changed := false
	for _, caller := range c.g.Functions() {
		for _, e := range c.g.Edges[caller] {
			for _, f := range analysis.FactsFor[CallsParamUnderLock](c.pass.Facts, e.Callee) {
				if f.Param < 0 || f.Param >= len(e.Args) {
					continue
				}
				dedupe := fmt.Sprintf("site\x00%s\x00%d\x00%s\x00%d", caller, e.Pos, f.Lock, f.Param)
				if c.seenSite[dedupe] {
					continue
				}
				c.seenSite[dedupe] = true
				arg := ast.Unparen(e.Args[f.Param])
				switch arg := arg.(type) {
				case *ast.FuncLit:
					if c.enqueue(lockCtx{fn: caller, lock: f.Lock, start: arg.Pos(), end: arg.End(),
						what: "this callback is invoked by " + analysis.ShortName(e.Callee) +
							" with " + shortLock(f.Lock) + " held"}) {
						changed = true
					}
				case *ast.Ident:
					if idx, ok := c.paramIndex(caller, arg); ok {
						if c.exportParamFact(caller, f.Lock, idx) {
							changed = true
						}
					}
				}
			}
		}
	}
	return changed
}

// paramIndex resolves ident to a parameter index of fn's signature.
func (c *checker) paramIndex(fn string, ident *ast.Ident) (int, bool) {
	decl, ok := c.g.Decls[fn]
	if !ok {
		return 0, false
	}
	obj := c.pass.TypesInfo.Uses[ident]
	v, ok := obj.(*types.Var)
	if !ok {
		return 0, false
	}
	fnObj, ok := c.pass.TypesInfo.Defs[decl.Name].(*types.Func)
	if !ok {
		return 0, false
	}
	params := fnObj.Type().(*types.Signature).Params()
	for i := 0; i < params.Len(); i++ {
		if params.At(i) == v {
			return i, true
		}
	}
	return 0, false
}

// exportParamFact exports CallsParamUnderLock once per (fn, lock,
// param) triple.
func (c *checker) exportParamFact(fn, lock string, param int) bool {
	dedupe := fmt.Sprintf("%s\x00%s\x00%d", fn, lock, param)
	if c.seenParam[dedupe] {
		return false
	}
	c.seenParam[dedupe] = true
	c.pass.Facts.Export(fn, CallsParamUnderLock{Lock: lock, Param: param})
	return true
}

// enqueue queues a context unless an identical one was processed.
func (c *checker) enqueue(ctx lockCtx) bool {
	key := fmt.Sprintf("%s\x00%s\x00%d\x00%d", ctx.fn, ctx.lock, ctx.start, ctx.end)
	if c.ctxSeen[key] {
		return false
	}
	c.ctxSeen[key] = true
	c.queue = append(c.queue, ctx)
	return true
}

// inRange reports whether pos falls inside the context.
func (ctx *lockCtx) inRange(pos token.Pos) bool {
	if ctx.start == token.NoPos && ctx.end == token.NoPos {
		return true
	}
	return pos > ctx.start && pos < ctx.end
}

// processCtx checks one under-lock context: calls to acquirers are
// reported, direct re-acquisitions are reported, interface calls taint
// their method (CalledUnderLock), calls of func-typed parameters taint
// the enclosing function (CallsParamUnderLock), and calls to plain
// local functions extend the context into the callee.
func (c *checker) processCtx(ctx lockCtx) {
	for _, e := range c.g.Edges[ctx.fn] {
		if !ctx.inRange(e.Pos) {
			continue
		}
		if via, ok := c.acquisitionChain(ctx.lock, e.Callee); ok {
			c.report(e.Pos, ctx.lock,
				"call to %s can deadlock: %s, and %s", analysis.ShortName(e.Callee), ctx.what, via)
			continue
		}
		if e.Interface {
			dedupe := "iface\x00" + e.Callee + "\x00" + ctx.lock
			if !c.seenIface[dedupe] {
				c.seenIface[dedupe] = true
				c.pass.Facts.Export(e.Callee, CalledUnderLock{Lock: ctx.lock})
			}
			continue
		}
		if _, local := c.g.Decls[e.Callee]; local && e.Callee != ctx.fn {
			c.enqueue(lockCtx{fn: e.Callee, lock: ctx.lock,
				what: analysis.ShortName(e.Callee) + " is called with " + shortLock(ctx.lock) +
					" held (" + ctx.what + ")"})
		}
	}
	// Direct re-acquisition inside the context (skip the acquire that
	// opened a region context — it is the region's own start).
	for _, ev := range c.events[ctx.fn] {
		if ev.acquire && ev.lock == ctx.lock && ctx.inRange(ev.pos) && ev.pos != ctx.start {
			c.report(ev.pos, ctx.lock, "re-entrant acquisition of %s: %s", shortLock(ctx.lock), ctx.what)
		}
	}
	c.scanParamCalls(ctx)
}

// scanParamCalls finds calls of func-typed parameters of ctx.fn inside
// the context and exports CallsParamUnderLock facts for them.
func (c *checker) scanParamCalls(ctx lockCtx) {
	decl, ok := c.g.Decls[ctx.fn]
	if !ok {
		return
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !ctx.inRange(call.Pos()) {
			return true
		}
		ident, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if idx, ok := c.paramIndex(ctx.fn, ident); ok {
			c.exportParamFact(ctx.fn, ctx.lock, idx)
		}
		return true
	})
}

// report emits one deduplicated diagnostic.
func (c *checker) report(pos token.Pos, lock, format string, args ...any) {
	key := c.pass.Fset.Position(pos).String() + "\x00" + lock
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	c.pass.Reportf(pos, format, args...)
}

// shortLock strips the package path off a lock key for messages.
func shortLock(lock string) string { return analysis.ShortName(lock) }

// namedOf strips pointers and returns the named type behind t.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
