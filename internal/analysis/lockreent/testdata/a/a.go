// Package a exercises lockreent: a guarded table whose observers run
// under the lock, *Locked methods, //statlint:locked annotations,
// callback parameters invoked under the lock, and lexical lock-held
// regions.
package a

import "sync"

// Table owns the guarded lock.
//
//statlint:guards mu
type Table struct {
	mu   sync.RWMutex
	rows int
	obs  []Observer
}

// Observer callbacks are invoked while Table.mu is held.
type Observer interface {
	OnPublish(n int)
}

func (t *Table) Insert(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows += n
	t.publishLocked()
}

func (t *Table) Rows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

func (t *Table) publishLocked() {
	for _, o := range t.obs {
		o.OnPublish(t.rows)
	}
}

// Reload releases before re-reading: no finding.
func (t *Table) Reload() {
	t.mu.Lock()
	t.rows = 0
	t.mu.Unlock()
	_ = t.Rows()
}

// Grow calls a transitive acquirer while holding the lock.
func (t *Table) Grow() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.bump() // want `can deadlock`
}

func (t *Table) bump() { _ = t.Rows() }

// Reset re-acquires the lock it already holds.
func (t *Table) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.mu.Lock() // want `re-entrant acquisition`
	t.rows = 0
}

// Sync invokes its callback under the read lock.
func (t *Table) Sync(fn func(int)) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	fn(t.rows)
}

func refreshAll(t *Table) {
	t.Sync(func(n int) {
		t.Insert(n) // want `can deadlock`
	})
	t.Sync(func(n int) { _ = n })
}

// badObserver re-enters the table from its callback.
type badObserver struct{ t *Table }

func (b *badObserver) OnPublish(int) {
	_ = b.t.Rows() // want `can deadlock`
}

// goodObserver only records the value.
type goodObserver struct{ last int }

func (g *goodObserver) OnPublish(n int) { g.last = n }

// Loader.finish is documented to run with the table lock held.
type Loader struct{ t *Table }

//statlint:locked Table.mu
func (l *Loader) finish() {
	l.t.publishLocked()
	l.t.Insert(1) // want `can deadlock`
}

//statlint:locked Table.missing
func (l *Loader) flush() {} // want `does not name`

//statlint:guards missing
type Box struct{ n int } // want `has no sync.Mutex`

var (
	_ = refreshAll
	_ = (&Loader{}).finish
	_ = (&Loader{}).flush
	_ = Box{}
	_ = (&badObserver{}).OnPublish
	_ = (&goodObserver{}).OnPublish
	_ = (&Table{}).Reload
	_ = (&Table{}).Grow
	_ = (&Table{}).Reset
)
