// Package analysis is a self-contained, stdlib-only re-creation of the
// go/analysis vocabulary (Analyzer, Pass, Diagnostic) plus a package
// loader built on `go list -export` and the gc export-data importer.
// The engine's custom lint (cmd/statlint) runs on machines without
// network access, so depending on golang.org/x/tools is not an option;
// this package provides exactly the subset the statlint analyzers
// need: parsed files, full type information, positioned reports — and,
// for the cross-package invariant analyzers, a per-package call graph
// (callgraph.go) and an object-keyed fact store (facts.go) populated
// bottom-up over the dependency order.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in reports, -run filters and
	// //statlint:ignore directives.
	Name string
	// Doc is the one-paragraph description printed by statlint -help.
	Doc string
	// Run executes the check on one package.
	Run func(*Pass) error
}

// Pass carries one analyzed package to an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts is the run-wide fact store: facts exported while analyzing
	// this package's dependencies are visible here, and facts exported
	// here are visible to dependents analyzed later.
	Facts *Facts
	// Program gives access to every package of the run (call-graph
	// caching, package lookup by path).
	Program *Program

	pkg   *Package
	diags []Diagnostic
}

// CallGraph returns this package's call graph, built on first use.
func (p *Pass) CallGraph() *CallGraph {
	return p.Program.callGraphFor(p.pkg)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the conventional
// "file:line:col: [analyzer] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Program is one Run's view of every analyzed package plus the shared
// fact store and cached call graphs.
type Program struct {
	Packages []*Package
	Facts    *Facts

	graphs map[*Package]*CallGraph
}

// NewProgram wraps pkgs for a run. Packages are reordered so that
// every package follows the packages it imports (facts flow bottom-up);
// `go list -deps` already emits this order, but patterns given in
// arbitrary order must not break fact visibility.
func NewProgram(pkgs []*Package) *Program {
	return &Program{
		Packages: topoSort(pkgs),
		Facts:    NewFacts(),
		graphs:   make(map[*Package]*CallGraph),
	}
}

// callGraphFor returns the cached call graph of pkg.
func (p *Program) callGraphFor(pkg *Package) *CallGraph {
	g, ok := p.graphs[pkg]
	if !ok {
		g = BuildCallGraph(pkg)
		p.graphs[pkg] = g
	}
	return g
}

// PackageByPath returns the analyzed package with the given import
// path, nil if the run does not include it.
func (p *Program) PackageByPath(path string) *Package {
	for _, pkg := range p.Packages {
		if pkg.Path == path {
			return pkg
		}
	}
	return nil
}

// topoSort orders pkgs dependencies-first. Import edges outside the
// analyzed set are ignored; ties keep the input order (stable).
func topoSort(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	state := make(map[*Package]int) // 0 unvisited, 1 visiting, 2 done
	var out []*Package
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p] != 0 {
			return // visiting (cycle: impossible in Go) or done
		}
		state[p] = 1
		if p.Types != nil {
			for _, imp := range p.Types.Imports() {
				if dep, ok := byPath[imp.Path()]; ok {
					visit(dep)
				}
			}
		}
		state[p] = 2
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}

// IgnoreAnalyzer is the pseudo-analyzer name carried by diagnostics
// about malformed //statlint:ignore directives; such diagnostics can
// never themselves be suppressed.
const IgnoreAnalyzer = "statlint"

// ignoreDirective is one parsed //statlint:ignore comment.
type ignoreDirective struct {
	pos      token.Position
	analyzer string
	used     bool
}

// Run applies each analyzer to each package (dependencies first, so
// cross-package facts are populated bottom-up) and returns all
// findings sorted by position. Findings on a line carrying — or
// immediately following — a `//statlint:ignore <analyzer> <reason>`
// comment naming their analyzer are suppressed; an ignore without a
// reason (or without an analyzer) is itself reported and suppresses
// nothing.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	prog := NewProgram(pkgs)
	var out []Diagnostic
	for _, pkg := range prog.Packages {
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Facts:     prog.Facts,
				Program:   prog,
				pkg:       pkg,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
			pkgDiags = append(pkgDiags, pass.diags...)
		}
		directives, bad := collectIgnores(pkg)
		out = append(out, bad...)
		out = append(out, applyIgnores(pkgDiags, directives)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// collectIgnores parses every //statlint:ignore comment of pkg,
// returning the well-formed directives and a diagnostic per malformed
// one (bare ignores are rejected, not silently honored: a suppression
// without a reason is a suppression nobody can audit).
func collectIgnores(pkg *Package) ([]*ignoreDirective, []Diagnostic) {
	const prefix = "//statlint:ignore"
	var directives []*ignoreDirective
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, prefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //statlint:ignorexyz — not this directive
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: IgnoreAnalyzer,
						Message: "malformed //statlint:ignore directive: want " +
							"`//statlint:ignore <analyzer> <reason>` (a reason is required; bare ignores are rejected)",
					})
					continue
				}
				directives = append(directives, &ignoreDirective{pos: pos, analyzer: fields[0]})
			}
		}
	}
	return directives, bad
}

// applyIgnores drops diagnostics matched by a directive: same file,
// same analyzer, and on the directive's line (trailing comment) or the
// line after it (directive on its own line above the flagged code).
func applyIgnores(diags []Diagnostic, directives []*ignoreDirective) []Diagnostic {
	if len(directives) == 0 {
		return diags
	}
	var out []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, dir := range directives {
			if dir.analyzer == d.Analyzer && dir.pos.Filename == d.Pos.Filename &&
				(d.Pos.Line == dir.pos.Line || d.Pos.Line == dir.pos.Line+1) {
				dir.used = true
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	return out
}
