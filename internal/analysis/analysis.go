// Package analysis is a self-contained, stdlib-only re-creation of the
// go/analysis vocabulary (Analyzer, Pass, Diagnostic) plus a package
// loader built on `go list -export` and the gc export-data importer.
// The engine's custom lint (cmd/statlint) runs on machines without
// network access, so depending on golang.org/x/tools is not an option;
// this package provides exactly the subset the statlint analyzers
// need: parsed files, full type information, and positioned reports.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in reports and -run filters.
	Name string
	// Doc is the one-paragraph description printed by statlint -help.
	Doc string
	// Run executes the check on one package.
	Run func(*Pass) error
}

// Pass carries one analyzed package to an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the conventional
// "file:line:col: [analyzer] message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies each analyzer to each package and returns all findings
// sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
			out = append(out, pass.diags...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
