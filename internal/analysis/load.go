package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPkg is the subset of `go list -json` output the loader uses.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
	DepsErrors []*struct{ Err string }
}

// goList runs `go list -export -deps -json` over patterns in dir and
// decodes the JSON stream.
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,DepOnly,Error,DepsErrors",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup adapts the export-file map produced by go list to the
// lookup function the gc importer expects.
func exportLookup(exports map[string]string) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	}
}

// Load parses and type-checks the packages matching the go list
// patterns (e.g. "./..."), rooted at dir ("" = current directory).
// Only non-test Go files are analyzed: the lint invariants target
// production code, and test helpers are explicitly exempt from some of
// them (e.g. sqltypes.MustSchema).
//
// Load is deliberately loud about broken input. `go list -e` reports
// load errors inside the JSON stream with a zero exit status, so a
// package that fails to list, a dependency that fails to build, or a
// pattern that matches nothing would otherwise slip through — and a
// lint run that silently analyzed nothing would pass CI while checking
// no invariant at all. Every listed error (including errors on
// dependency-only packages, whose missing export data would later
// surface as a cryptic importer failure) is collected and returned,
// and matching zero packages is an error, never an empty success.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	var loadErrs []string
	for _, p := range listed {
		if p.Error != nil {
			loadErrs = append(loadErrs, fmt.Sprintf("%s: %s", p.ImportPath, p.Error.Err))
		}
		for _, de := range p.DepsErrors {
			if de != nil {
				loadErrs = append(loadErrs, fmt.Sprintf("%s: dependency error: %s", p.ImportPath, de.Err))
			}
		}
	}
	if len(loadErrs) > 0 {
		return nil, fmt.Errorf("analysis: go list reported %d error(s):\n  %s",
			len(loadErrs), strings.Join(loadErrs, "\n  "))
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))

	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Name == "main" && p.ImportPath == "command-line-arguments" {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := TypeCheck(fset, p.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("analysis: patterns %v matched no packages under %q", patterns, dirLabel(dir))
	}
	return out, nil
}

// dirLabel names dir in errors ("." for the default).
func dirLabel(dir string) string {
	if dir == "" {
		return "."
	}
	return dir
}

// LoadFixture type-checks a directory of fixture files (an analyzer's
// testdata) as a single package, resolving imports through the
// enclosing module's build cache. Unlike Load it does not require the
// fixture to be part of any `go list` package graph — testdata
// directories deliberately are not.
func LoadFixture(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	// Resolve the fixture's imports: list them (plus std) with export
	// data so the gc importer can read them back.
	fset := token.NewFileSet()
	imports := map[string]bool{}
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, im := range af.Imports {
			imports[strings.Trim(im.Path.Value, `"`)] = true
		}
	}
	patterns := make([]string, 0, len(imports))
	for im := range imports {
		patterns = append(patterns, im)
	}
	exports := make(map[string]string)
	if len(patterns) > 0 {
		listed, err := goList(dir, patterns)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	fset = token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	return TypeCheck(fset, dir, files, imp)
}

// TypeCheck parses the named files and type-checks them as one package.
func TypeCheck(fset *token.FileSet, path string, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, TypesInfo: info}, nil
}
