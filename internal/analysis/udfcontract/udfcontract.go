// Package udfcontract enforces the engine's UDF authoring contract
// (the Teradata-style rules PAPER.md §2 fixes and internal/engine/udf
// documents):
//
//   - A type that looks like an aggregate UDF (it has most of the
//     phase methods) must implement the complete udf.Aggregate
//     interface — a missing Merge, for example, would only surface at
//     registration or, worse, at query time.
//   - An aggregate's Init phase must allocate its state through the
//     provided *udf.Heap; ignoring the heap bypasses the 64 KB
//     segment accounting that the MAX_d bound and blocked computation
//     depend on.
//   - Packages that define aggregate UDFs must not hold package-level
//     mutable state: one Aggregate value serves all queries
//     concurrently, so all per-group state must live in Init-allocated
//     state (blank identity assertions like `var _ udf.Aggregate = x`
//     are exempt).
//   - Scalar UDFs (anything with the ScalarFunc signature) must not
//     perform I/O — they run once per row inside partition scans.
package udfcontract

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

const (
	udfPath      = "repro/internal/engine/udf"
	sqltypesPath = "repro/internal/engine/sqltypes"
)

// phaseMethods are the udf.Aggregate methods; a type with most of them
// is treated as an intended aggregate UDF.
var phaseMethods = []string{"Name", "CheckArgs", "Init", "Accumulate", "Merge", "Finalize"}

// ioPackages are forbidden inside scalar UDF bodies.
var ioPackages = map[string]bool{
	"os": true, "io": true, "io/ioutil": true, "bufio": true,
	"net": true, "net/http": true,
}

// ioFmtFuncs are the fmt functions that write (Errorf/Sprintf stay
// allowed — building an error is not I/O).
var ioFmtFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// Analyzer enforces the aggregate and scalar UDF contracts.
var Analyzer = &analysis.Analyzer{
	Name: "udfcontract",
	Doc: "enforce the UDF authoring contract: complete udf.Aggregate implementations, " +
		"Init allocating through the udf.Heap, no package-level mutable state in " +
		"aggregate-defining packages, and no I/O in scalar UDF bodies",
	Run: run,
}

func run(pass *analysis.Pass) error {
	aggIface := lookupAggregate(pass.Pkg)
	definesAggregate := false

	// Pass 1: named types — completeness and Init/Heap discipline.
	if aggIface != nil {
		for _, name := range pass.Pkg.Scope().Names() {
			tn, ok := pass.Pkg.Scope().Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			have := map[string]bool{}
			for _, m := range phaseMethods {
				if hasMethod(named, m) {
					have[m] = true
				}
			}
			if len(have) < 3 {
				continue // not aggregate-shaped
			}
			if !implementsAggregate(named, aggIface) {
				var missing []string
				for _, m := range phaseMethods {
					if !have[m] {
						missing = append(missing, m)
					}
				}
				pass.Reportf(tn.Pos(), "%s implements aggregate-UDF phases but not the full udf.Aggregate contract (missing or mis-typed: %s)",
					name, strings.Join(missing, ", "))
				continue
			}
			definesAggregate = true
			checkInitUsesHeap(pass, named)
		}
	}

	// Pass 2: package-level mutable state in aggregate-defining packages.
	if definesAggregate {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok.String() != "var" {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, id := range vs.Names {
						if id.Name == "_" {
							continue // interface-satisfaction assertion
						}
						pass.Reportf(id.Pos(), "package-level var %s in an aggregate-UDF package; one Aggregate value serves all queries concurrently, so state must live in Init-allocated heap state", id.Name)
					}
				}
			}
		}
	}

	// Pass 3: scalar UDF bodies must not do I/O.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok && isScalarFunc(obj.Type()) {
				checkNoIO(pass, fd.Body, fd.Name.Name)
			}
			// Scalar UDFs are often function literals (numeric1-style
			// adapters); check those too.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if !ok {
					return true
				}
				if tv, ok := pass.TypesInfo.Types[lit]; ok && isScalarFunc(tv.Type) {
					checkNoIO(pass, lit.Body, "scalar UDF literal")
					return false
				}
				return true
			})
		}
	}
	return nil
}

// lookupAggregate finds the udf.Aggregate interface: in the package
// itself (when analyzing package udf) or among its direct imports
// (a package defining aggregates necessarily imports udf for Heap and
// State). Nil if udf is not in view.
func lookupAggregate(pkg *types.Package) *types.Interface {
	scopeOf := func(p *types.Package) *types.Interface {
		obj := p.Scope().Lookup("Aggregate")
		if obj == nil {
			return nil
		}
		iface, _ := obj.Type().Underlying().(*types.Interface)
		return iface
	}
	if pkg.Path() == udfPath {
		return scopeOf(pkg)
	}
	for _, imp := range pkg.Imports() {
		if imp.Path() == udfPath {
			return scopeOf(imp)
		}
	}
	return nil
}

func implementsAggregate(named *types.Named, iface *types.Interface) bool {
	return types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface)
}

func hasMethod(named *types.Named, name string) bool {
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}

// checkInitUsesHeap finds the AST of named's Init method and reports
// if the *udf.Heap parameter is discarded or never used.
func checkInitUsesHeap(pass *analysis.Pass, named *types.Named) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Init" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := obj.Type().(*types.Signature).Recv()
			if recv == nil || !sameNamed(recv.Type(), named) {
				continue
			}
			params := fd.Type.Params
			if params == nil || len(params.List) == 0 {
				continue
			}
			heapField := params.List[0]
			if len(heapField.Names) == 0 || heapField.Names[0].Name == "_" {
				pass.Reportf(fd.Pos(), "%s.Init discards its *udf.Heap; allocate state through the heap so the 64 KB segment budget is enforced", named.Obj().Name())
				return
			}
			heapObj := pass.TypesInfo.Defs[heapField.Names[0]]
			used := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == heapObj {
					used = true
				}
				return !used
			})
			if !used {
				pass.Reportf(fd.Pos(), "%s.Init never uses its *udf.Heap; allocate state through the heap so the 64 KB segment budget is enforced", named.Obj().Name())
			}
			return
		}
	}
}

func sameNamed(t types.Type, named *types.Named) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj() == named.Obj()
}

// isScalarFunc reports whether t is the scalar-UDF signature
// func([]sqltypes.Value) (sqltypes.Value, error).
func isScalarFunc(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 2 {
		return false
	}
	slice, ok := sig.Params().At(0).Type().(*types.Slice)
	if !ok || !isSQLValue(slice.Elem()) {
		return false
	}
	if !isSQLValue(sig.Results().At(0).Type()) {
		return false
	}
	return sig.Results().At(1).Type().String() == "error"
}

func isSQLValue(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Value" && obj.Pkg() != nil && obj.Pkg().Path() == sqltypesPath
}

// checkNoIO reports calls into I/O packages inside a scalar UDF body.
func checkNoIO(pass *analysis.Pass, body ast.Node, where string) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		path := obj.Pkg().Path()
		if ioPackages[path] || (path == "fmt" && ioFmtFuncs[obj.Name()]) {
			pass.Reportf(call.Pos(), "scalar UDF %s performs I/O (%s.%s); scalar UDFs run once per row inside partition scans and must stay pure", where, path, obj.Name())
		}
		return true
	})
}
