package udfcontract_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/udfcontract"
)

func TestUDFContract(t *testing.T) {
	analysistest.Run(t, udfcontract.Analyzer, "testdata/a")
}
