// Fixture for the udfcontract analyzer.
package a

import (
	"fmt"
	"os"

	"repro/internal/engine/sqltypes"
	"repro/internal/engine/udf"
)

// partial implements most aggregate phases but not the full contract.
type partial struct{} // want `partial implements aggregate-UDF phases but not the full udf.Aggregate contract`

func (partial) Name() string                                     { return "partial" }
func (partial) CheckArgs(n int) error                            { return nil }
func (partial) Init(h *udf.Heap) (udf.State, error)              { return nil, h.Alloc(8) }
func (partial) Accumulate(s udf.State, a []sqltypes.Value) error { return nil }

// noheap is a complete aggregate whose Init bypasses heap accounting.
type noheap struct{}

func (noheap) Name() string          { return "noheap" }
func (noheap) CheckArgs(n int) error { return nil }

func (noheap) Init(_ *udf.Heap) (udf.State, error) { // want `noheap.Init discards its \*udf.Heap`
	return new([4096]float64), nil
}

func (noheap) Accumulate(s udf.State, a []sqltypes.Value) error { return nil }
func (noheap) Merge(dst, src udf.State) error                   { return nil }
func (noheap) Finalize(s udf.State) (sqltypes.Value, error)     { return sqltypes.Null, nil }

var _ udf.Aggregate = noheap{} // blank identity assertion: allowed

// seen is package-level mutable state in an aggregate-defining
// package: one Aggregate value serves all queries concurrently.
var seen map[string]int // want `package-level var seen in an aggregate-UDF package`

// shout is a scalar UDF that performs I/O.
func shout(args []sqltypes.Value) (sqltypes.Value, error) {
	fmt.Println("scoring row", args) // want `scalar UDF shout performs I/O \(fmt.Println\)`
	f, err := os.Open("model.txt")   // want `scalar UDF shout performs I/O \(os.Open\)`
	if err != nil {
		return sqltypes.Null, err
	}
	defer f.Close() // want `scalar UDF shout performs I/O \(os.Close\)`
	return sqltypes.Null, nil
}

// pure is a scalar UDF with no I/O: allowed (fmt.Errorf is not I/O).
func pure(args []sqltypes.Value) (sqltypes.Value, error) {
	if len(args) == 0 {
		return sqltypes.Null, fmt.Errorf("a: pure expects arguments")
	}
	return args[0], nil
}
