package score

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine/db"
	"repro/internal/engine/sqltypes"
	"repro/internal/matrix"
)

// Model-table layouts, exactly the paper's (§3.5):
//
//	BETA(b0, b1, ..., bd)          — one row, all coefficients in one I/O
//	MU(X1, ..., Xd)                — one row, the data mean
//	LAMBDA(j, X1, ..., Xd)         — k rows, one per component
//	C(j, X1, ..., Xd)              — k rows, centroids
//	R(j, X1, ..., Xd)              — k rows, diagonal variances
//	W(W1, ..., Wk)                 — one row, cluster weights

// dimsSchema builds (X1..Xd) columns, optionally prefixed with j.
func dimsSchema(d int, withJ bool) *sqltypes.Schema {
	var cols []sqltypes.Column
	if withJ {
		cols = append(cols, sqltypes.Column{Name: "j", Type: sqltypes.TypeBigInt})
	}
	for a := 1; a <= d; a++ {
		cols = append(cols, sqltypes.Column{Name: fmt.Sprintf("X%d", a), Type: sqltypes.TypeDouble})
	}
	return &sqltypes.Schema{Columns: cols}
}

func replaceTable(d *db.DB, name string, schema *sqltypes.Schema) error {
	if d.HasTable(name) {
		if err := d.DropTable(name); err != nil {
			return err
		}
	}
	_, err := d.CreateTable(name, schema)
	return err
}

// SaveLinReg stores β in table BETA(b0..bd). The table name is a
// parameter so multiple models coexist.
func SaveLinReg(d *db.DB, table string, m *core.LinRegModel) error {
	cols := make([]sqltypes.Column, len(m.Beta))
	for i := range m.Beta {
		cols[i] = sqltypes.Column{Name: fmt.Sprintf("b%d", i), Type: sqltypes.TypeDouble}
	}
	if err := replaceTable(d, table, &sqltypes.Schema{Columns: cols}); err != nil {
		return err
	}
	t, err := d.Table(table)
	if err != nil {
		return err
	}
	row := make(sqltypes.Row, len(m.Beta))
	for i, b := range m.Beta {
		row[i] = sqltypes.NewDouble(b)
	}
	return t.Insert(row)
}

// LoadLinReg reads a BETA table back into a model (without fit
// statistics, which live with the training run).
func LoadLinReg(d *db.DB, table string) (*core.LinRegModel, error) {
	t, err := d.Table(table)
	if err != nil {
		return nil, err
	}
	var beta []float64
	err = t.Scan(func(r sqltypes.Row) error {
		if beta != nil {
			return fmt.Errorf("score: BETA table %q has more than one row", table)
		}
		beta, err = r.Floats(nil)
		if err != nil {
			return err
		}
		beta = append([]float64(nil), beta...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if beta == nil {
		return nil, fmt.Errorf("score: BETA table %q is empty", table)
	}
	return &core.LinRegModel{D: len(beta) - 1, Beta: beta}, nil
}

// SavePCA stores µ in muTable and Λ (with eigenvalues omitted — they
// are build-time diagnostics) in lambdaTable(j, X1..Xd), one row per
// component j = 1..k.
func SavePCA(d *db.DB, muTable, lambdaTable string, m *core.PCAModel) error {
	if err := replaceTable(d, muTable, dimsSchema(m.D, false)); err != nil {
		return err
	}
	mt, err := d.Table(muTable)
	if err != nil {
		return err
	}
	muRow := make(sqltypes.Row, m.D)
	for a, v := range m.Mu {
		muRow[a] = sqltypes.NewDouble(v)
	}
	if err := mt.Insert(muRow); err != nil {
		return err
	}
	if err := replaceTable(d, lambdaTable, dimsSchema(m.D, true)); err != nil {
		return err
	}
	lt, err := d.Table(lambdaTable)
	if err != nil {
		return err
	}
	for j := 0; j < m.K; j++ {
		row := make(sqltypes.Row, m.D+1)
		row[0] = sqltypes.NewBigInt(int64(j + 1))
		for a := 0; a < m.D; a++ {
			// Under the correlation basis, scoring divides by the
			// per-dimension standard deviation; fold it into the
			// stored loading so fascore's fixed (x−µ)·Λ form applies.
			l := m.Lambda.At(a, j)
			if m.Sd != nil {
				l /= m.Sd[a]
			}
			row[a+1] = sqltypes.NewDouble(l)
		}
		if err := lt.Insert(row); err != nil {
			return err
		}
	}
	return nil
}

// LoadPCA reads MU and LAMBDA tables back into a scoring-capable model
// (basis-specific scaling is already folded into the loadings).
func LoadPCA(d *db.DB, muTable, lambdaTable string) (*core.PCAModel, error) {
	mt, err := d.Table(muTable)
	if err != nil {
		return nil, err
	}
	var mu []float64
	err = mt.Scan(func(r sqltypes.Row) error {
		f, err := r.Floats(nil)
		if err != nil {
			return err
		}
		mu = append([]float64(nil), f...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if mu == nil {
		return nil, fmt.Errorf("score: MU table %q is empty", muTable)
	}
	lt, err := d.Table(lambdaTable)
	if err != nil {
		return nil, err
	}
	type comp struct {
		j   int
		vec []float64
	}
	var comps []comp
	err = lt.Scan(func(r sqltypes.Row) error {
		f, err := r.Floats(nil)
		if err != nil {
			return err
		}
		comps = append(comps, comp{j: int(f[0]), vec: append([]float64(nil), f[1:]...)})
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(comps) == 0 {
		return nil, fmt.Errorf("score: LAMBDA table %q is empty", lambdaTable)
	}
	d0 := len(mu)
	lambda := matrix.New(d0, len(comps))
	for _, c := range comps {
		if c.j < 1 || c.j > len(comps) || len(c.vec) != d0 {
			return nil, fmt.Errorf("score: LAMBDA table %q is malformed", lambdaTable)
		}
		for a := 0; a < d0; a++ {
			lambda.Set(a, c.j-1, c.vec[a])
		}
	}
	return &core.PCAModel{D: d0, K: len(comps), Lambda: lambda, Mu: mu}, nil
}

// SaveKMeans stores centroids, radii and weights in the paper's three
// tables C(j, X1..Xd), R(j, X1..Xd) and W(W1..Wk).
func SaveKMeans(d *db.DB, cTable, rTable, wTable string, m *core.KMeansModel) error {
	for _, spec := range []struct {
		table string
		data  [][]float64
	}{{cTable, m.C}, {rTable, m.R}} {
		if err := replaceTable(d, spec.table, dimsSchema(m.D, true)); err != nil {
			return err
		}
		t, err := d.Table(spec.table)
		if err != nil {
			return err
		}
		for j, vec := range spec.data {
			row := make(sqltypes.Row, m.D+1)
			row[0] = sqltypes.NewBigInt(int64(j + 1))
			for a, v := range vec {
				row[a+1] = sqltypes.NewDouble(v)
			}
			if err := t.Insert(row); err != nil {
				return err
			}
		}
	}
	cols := make([]sqltypes.Column, m.K)
	for j := 0; j < m.K; j++ {
		cols[j] = sqltypes.Column{Name: fmt.Sprintf("W%d", j+1), Type: sqltypes.TypeDouble}
	}
	if err := replaceTable(d, wTable, &sqltypes.Schema{Columns: cols}); err != nil {
		return err
	}
	wt, err := d.Table(wTable)
	if err != nil {
		return err
	}
	row := make(sqltypes.Row, m.K)
	for j, w := range m.W {
		row[j] = sqltypes.NewDouble(w)
	}
	return wt.Insert(row)
}

// LoadKMeans reads the C/R/W tables back into a model.
func LoadKMeans(d *db.DB, cTable, rTable, wTable string) (*core.KMeansModel, error) {
	loadJ := func(table string) ([][]float64, error) {
		t, err := d.Table(table)
		if err != nil {
			return nil, err
		}
		byJ := make(map[int][]float64)
		err = t.Scan(func(r sqltypes.Row) error {
			f, err := r.Floats(nil)
			if err != nil {
				return err
			}
			byJ[int(f[0])] = append([]float64(nil), f[1:]...)
			return nil
		})
		if err != nil {
			return nil, err
		}
		out := make([][]float64, len(byJ))
		for j := 1; j <= len(byJ); j++ {
			vec, ok := byJ[j]
			if !ok {
				return nil, fmt.Errorf("score: table %q missing row j=%d", table, j)
			}
			out[j-1] = vec
		}
		return out, nil
	}
	c, err := loadJ(cTable)
	if err != nil {
		return nil, err
	}
	r, err := loadJ(rTable)
	if err != nil {
		return nil, err
	}
	wt, err := d.Table(wTable)
	if err != nil {
		return nil, err
	}
	var w []float64
	err = wt.Scan(func(row sqltypes.Row) error {
		f, err := row.Floats(nil)
		if err != nil {
			return err
		}
		w = append([]float64(nil), f...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(c) == 0 || len(c) != len(r) || len(w) != len(c) {
		return nil, fmt.Errorf("score: inconsistent clustering tables (%d centroids, %d radii, %d weights)", len(c), len(r), len(w))
	}
	return &core.KMeansModel{D: len(c[0]), K: len(c), C: c, R: r, W: w}, nil
}
