package score

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine/db"
	"repro/internal/engine/sqltypes"
	"repro/internal/sqlgen"
)

// setup creates a db with scoring UDFs, a data table X(i, X1..Xd[, Y]),
// and returns the raw points.
func setup(t *testing.T, dims int, withY bool, n int, seed int64) (*db.DB, [][]float64) {
	t.Helper()
	d := db.Open(db.Options{Partitions: 4})
	if err := Register(d); err != nil {
		t.Fatal(err)
	}
	cols := []sqltypes.Column{{Name: "i", Type: sqltypes.TypeBigInt}}
	for a := 1; a <= dims; a++ {
		cols = append(cols, sqltypes.Column{Name: fmt.Sprintf("X%d", a), Type: sqltypes.TypeDouble})
	}
	if withY {
		cols = append(cols, sqltypes.Column{Name: "Y", Type: sqltypes.TypeDouble})
	}
	tab, err := d.CreateTable("X", &sqltypes.Schema{Columns: cols})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	width := dims
	if withY {
		width++
	}
	pts := make([][]float64, n)
	for i := range pts {
		x := make([]float64, width)
		row := make(sqltypes.Row, width+1)
		row[0] = sqltypes.NewBigInt(int64(i))
		for a := 0; a < dims; a++ {
			x[a] = rng.NormFloat64()*8 + 30
			row[a+1] = sqltypes.NewDouble(x[a])
		}
		if withY {
			y := 5.0
			for a := 0; a < dims; a++ {
				y += float64(a+1) * x[a]
			}
			y += rng.NormFloat64()
			x[dims] = y
			row[dims+1] = sqltypes.NewDouble(y)
		}
		pts[i] = x
		if err := tab.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	return d, pts
}

// fetchByID runs sql and returns a map id → remaining columns.
func fetchByID(t *testing.T, d *db.DB, sql string) map[int64][]float64 {
	t.Helper()
	res, err := d.Exec(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	out := make(map[int64][]float64, len(res.Rows))
	for _, r := range res.Rows {
		vals := make([]float64, len(r)-1)
		for j, v := range r[1:] {
			vals[j] = v.MustFloat()
		}
		out[r[0].Int()] = vals
	}
	return out
}

func TestRegressionScoringSQLvsUDFvsDirect(t *testing.T) {
	const dims, n = 4, 300
	d, pts := setup(t, dims, true, n, 3)
	nlq := core.MustNLQ(dims+1, core.Triangular)
	for _, z := range pts {
		nlq.Update(z)
	}
	m, err := core.BuildLinReg(nlq)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveLinReg(d, "BETA", m); err != nil {
		t.Fatal(err)
	}
	udfScores := fetchByID(t, d, sqlgen.RegScoreUDF("X", "BETA", "i", sqlgen.Dims(dims)))
	sqlScores := fetchByID(t, d, sqlgen.RegScoreSQL("X", "BETA", "i", sqlgen.Dims(dims)))
	if len(udfScores) != n || len(sqlScores) != n {
		t.Fatalf("scored %d/%d rows", len(udfScores), len(sqlScores))
	}
	for i, z := range pts {
		want, err := m.Predict(z[:dims])
		if err != nil {
			t.Fatal(err)
		}
		u := udfScores[int64(i)][0]
		s := sqlScores[int64(i)][0]
		if math.Abs(u-want) > 1e-9 || math.Abs(s-want) > 1e-9 {
			t.Fatalf("row %d: direct=%g udf=%g sql=%g", i, want, u, s)
		}
	}
}

func TestPCAScoringSQLvsUDFvsDirect(t *testing.T) {
	const dims, n, k = 4, 250, 2
	d, pts := setup(t, dims, false, n, 5)
	nlq := core.MustNLQ(dims, core.Triangular)
	for _, x := range pts {
		nlq.Update(x)
	}
	for _, basis := range []core.PCABasis{core.CorrelationBasis, core.CovarianceBasis} {
		m, err := core.BuildPCA(nlq, k, basis)
		if err != nil {
			t.Fatal(err)
		}
		if err := SavePCA(d, "MU", "LAMBDA", m); err != nil {
			t.Fatal(err)
		}
		udfScores := fetchByID(t, d, sqlgen.PCAScoreUDF("X", "MU", "LAMBDA", "i", sqlgen.Dims(dims), k))
		sqlScores := fetchByID(t, d, sqlgen.PCAScoreSQL("X", "MU", "LAMBDA", "i", sqlgen.Dims(dims), k))
		for i, x := range pts {
			want, err := m.Score(x)
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < k; j++ {
				if math.Abs(udfScores[int64(i)][j]-want[j]) > 1e-9 {
					t.Fatalf("basis %v row %d comp %d: udf=%g direct=%g", basis, i, j, udfScores[int64(i)][j], want[j])
				}
				if math.Abs(sqlScores[int64(i)][j]-want[j]) > 1e-9 {
					t.Fatalf("basis %v row %d comp %d: sql=%g direct=%g", basis, i, j, sqlScores[int64(i)][j], want[j])
				}
			}
		}
	}
}

func TestClusterScoringSQLvsUDFvsDirect(t *testing.T) {
	const dims, n, k = 3, 300, 4
	d, pts := setup(t, dims, false, n, 7)
	m, err := core.BuildKMeans(core.SliceSource(pts), k, core.KMeansOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveKMeans(d, "C", "R", "W", m); err != nil {
		t.Fatal(err)
	}
	udfScores := fetchByID(t, d, sqlgen.ClusterScoreUDF("X", "C", "i", sqlgen.Dims(dims), k))
	// SQL version: two scans over a pivoted distance table.
	stmts := sqlgen.ClusterScoreSQL("X", "C", "XD", "i", sqlgen.Dims(dims), k)
	for _, s := range stmts[:len(stmts)-1] {
		if _, err := d.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	sqlScores := fetchByID(t, d, stmts[len(stmts)-1])
	for i, x := range pts {
		want, _ := m.Closest(x)
		u := int(udfScores[int64(i)][0])
		s := int(sqlScores[int64(i)][0])
		if u != want+1 || s != want+1 { // UDF/SQL use 1-based j
			t.Fatalf("row %d: direct=%d udf=%d sql=%d", i, want+1, u, s)
		}
	}
}

func TestModelTableRoundTrips(t *testing.T) {
	const dims, n = 3, 200
	d, pts := setup(t, dims, true, n, 9)

	nlq := core.MustNLQ(dims+1, core.Triangular)
	for _, z := range pts {
		nlq.Update(z)
	}
	lr, err := core.BuildLinReg(nlq)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveLinReg(d, "BETA", lr); err != nil {
		t.Fatal(err)
	}
	lr2, err := LoadLinReg(d, "BETA")
	if err != nil {
		t.Fatal(err)
	}
	for i := range lr.Beta {
		if lr.Beta[i] != lr2.Beta[i] {
			t.Fatalf("beta[%d] changed in round trip", i)
		}
	}

	xn := core.MustNLQ(dims, core.Triangular)
	for _, z := range pts {
		xn.Update(z[:dims])
	}
	pca, err := core.BuildPCA(xn, 2, core.CovarianceBasis)
	if err != nil {
		t.Fatal(err)
	}
	if err := SavePCA(d, "MU", "LAMBDA", pca); err != nil {
		t.Fatal(err)
	}
	pca2, err := LoadPCA(d, "MU", "LAMBDA")
	if err != nil {
		t.Fatal(err)
	}
	// Loaded model scores identically (scaling folded into loadings).
	w1, _ := pca.Score(pts[0][:dims])
	w2, _ := pca2.Score(pts[0][:dims])
	for j := range w1 {
		if math.Abs(w1[j]-w2[j]) > 1e-12 {
			t.Fatalf("PCA round-trip scoring mismatch: %v vs %v", w1, w2)
		}
	}

	km, err := core.BuildKMeans(sliceOfPrefix(pts, dims), 3, core.KMeansOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveKMeans(d, "C", "R", "W", km); err != nil {
		t.Fatal(err)
	}
	km2, err := LoadKMeans(d, "C", "R", "W")
	if err != nil {
		t.Fatal(err)
	}
	if km2.K != km.K || km2.D != km.D {
		t.Fatalf("clustering round trip: %+v", km2)
	}
	for j := range km.C {
		for a := range km.C[j] {
			if km.C[j][a] != km2.C[j][a] || km.R[j][a] != km2.R[j][a] {
				t.Fatalf("cluster %d changed in round trip", j)
			}
		}
		if km.W[j] != km2.W[j] {
			t.Fatalf("weight %d changed in round trip", j)
		}
	}

	// Re-saving replaces, not duplicates.
	if err := SaveLinReg(d, "BETA", lr); err != nil {
		t.Fatal(err)
	}
	tb, _ := d.Table("BETA")
	if tb.NumRows() != 1 {
		t.Fatalf("BETA has %d rows after re-save", tb.NumRows())
	}
}

func sliceOfPrefix(pts [][]float64, d int) core.SliceSource {
	out := make(core.SliceSource, len(pts))
	for i, p := range pts {
		out[i] = p[:d]
	}
	return out
}

func TestLoadErrors(t *testing.T) {
	d := db.Open(db.Options{Partitions: 2})
	if _, err := LoadLinReg(d, "BETA"); err == nil {
		t.Fatal("missing table must fail")
	}
	if _, err := d.CreateTable("BETA", sqltypes.MustSchema(sqltypes.Column{Name: "b0", Type: sqltypes.TypeDouble})); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLinReg(d, "BETA"); err == nil {
		t.Fatal("empty BETA must fail")
	}
	if _, err := LoadPCA(d, "MU", "LAMBDA"); err == nil {
		t.Fatal("missing PCA tables must fail")
	}
	if _, err := LoadKMeans(d, "C", "R", "W"); err == nil {
		t.Fatal("missing clustering tables must fail")
	}
}

func TestScoringUDFNullHandling(t *testing.T) {
	d := db.Open(db.Options{Partitions: 2})
	if err := Register(d); err != nil {
		t.Fatal(err)
	}
	res, err := d.Exec("SELECT linearregscore(NULL, 1.0, 2.0)")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Value(); !v.IsNull() {
		t.Fatalf("NULL input must score NULL, got %v", v)
	}
	res, err = d.Exec("SELECT clusterscore(3.0, 1.0, 2.0)")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Value(); v.Int() != 2 {
		t.Fatalf("clusterscore = %v, want 2", v)
	}
	// Arity violations error at evaluation.
	if _, err := d.Exec("SELECT linearregscore(1.0, 2.0)"); err == nil {
		t.Fatal("even arg count must fail")
	}
	if _, err := d.Exec("SELECT fascore(1.0, 2.0, 3.0, 4.0)"); err == nil {
		t.Fatal("non-multiple-of-3 must fail")
	}
	if _, err := d.Exec("SELECT kdistance(1.0, 2.0, 3.0)"); err == nil {
		t.Fatal("odd arg count must fail")
	}
}
