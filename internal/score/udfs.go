// Package score implements model application ("scoring", §3.5): the
// scalar UDFs that evaluate a model per row in a single table scan,
// and the relational model-table layouts the paper stores models in
// (BETA, MU/LAMBDA, C/R/W).
package score

import (
	"fmt"
	"math"

	"repro/internal/engine/db"
	"repro/internal/engine/expr"
	"repro/internal/engine/sqltypes"
)

// Register installs the scoring scalar UDFs:
//
//	linearregscore(X1..Xd, b0, b1..bd)        → ŷ = β₀ + βᵀx
//	fascore(X1..Xd, µ1..µd, Λ1j..Λdj)         → j-th reduced coordinate
//	kdistance(X1..Xd, C1j..Cdj)               → (x−Cj)ᵀ(x−Cj)
//	clusterscore(d1..dk)                      → argmin j (1-based)
//
// Each is called once (fascore/kdistance k times) in a SELECT that
// cross-joins X with the small model tables, so scoring is one scan.
func Register(d *db.DB) error {
	numeric := []sqltypes.Type{sqltypes.TypeDouble}
	defs := []expr.FuncDef{
		{Name: "linearregscore", MinArgs: 3, MaxArgs: -1, Fn: linearRegScore,
			Params: numeric, Ret: sqltypes.TypeDouble, UDF: true},
		{Name: "fascore", MinArgs: 3, MaxArgs: -1, Fn: faScore,
			Params: numeric, Ret: sqltypes.TypeDouble, UDF: true},
		{Name: "kdistance", MinArgs: 2, MaxArgs: -1, Fn: kDistance,
			Params: numeric, Ret: sqltypes.TypeDouble, UDF: true},
		{Name: "clusterscore", MinArgs: 1, MaxArgs: -1, Fn: clusterScore,
			Params: numeric, Ret: sqltypes.TypeBigInt, UDF: true},
	}
	for _, def := range defs {
		if err := d.Scalars().Register(def); err != nil {
			return err
		}
	}
	return nil
}

// floats converts a run of arguments; any NULL yields ok=false (the
// UDF then returns NULL for the row, standard scalar-UDF semantics).
func floats(args []sqltypes.Value, dst []float64) ([]float64, bool, error) {
	dst = dst[:0]
	for _, v := range args {
		if v.IsNull() {
			return nil, false, nil
		}
		f, ok := v.Float()
		if !ok {
			return nil, false, fmt.Errorf("score: non-numeric argument %v", v)
		}
		dst = append(dst, f)
	}
	return dst, true, nil
}

// linearRegScore computes the dot product ŷ = b0 + Σ ba·xa. The call
// site passes 2d+1 arguments: d point values then d+1 coefficients.
func linearRegScore(args []sqltypes.Value) (sqltypes.Value, error) {
	if len(args)%2 != 1 {
		return sqltypes.Null, fmt.Errorf("score: linearregscore expects 2d+1 arguments (x..., b0, b...), got %d", len(args))
	}
	d := (len(args) - 1) / 2
	vals, ok, err := floats(args, make([]float64, 0, len(args)))
	if err != nil || !ok {
		return sqltypes.Null, err
	}
	x, beta := vals[:d], vals[d:]
	y := beta[0]
	for a := 0; a < d; a++ {
		y += beta[a+1] * x[a]
	}
	return sqltypes.NewDouble(y), nil
}

// faScore computes the j-th coordinate of x′ = Λᵀ(x−µ): the call site
// passes 3d arguments — the point, the mean, and the j-th component.
func faScore(args []sqltypes.Value) (sqltypes.Value, error) {
	if len(args)%3 != 0 {
		return sqltypes.Null, fmt.Errorf("score: fascore expects 3d arguments (x..., mu..., lambda_j...), got %d", len(args))
	}
	d := len(args) / 3
	vals, ok, err := floats(args, make([]float64, 0, len(args)))
	if err != nil || !ok {
		return sqltypes.Null, err
	}
	x, mu, lam := vals[:d], vals[d:2*d], vals[2*d:]
	var s float64
	for a := 0; a < d; a++ {
		s += (x[a] - mu[a]) * lam[a]
	}
	return sqltypes.NewDouble(s), nil
}

// kDistance computes the squared Euclidean distance between the point
// and one centroid: 2d arguments.
func kDistance(args []sqltypes.Value) (sqltypes.Value, error) {
	if len(args)%2 != 0 {
		return sqltypes.Null, fmt.Errorf("score: kdistance expects 2d arguments (x..., c_j...), got %d", len(args))
	}
	d := len(args) / 2
	vals, ok, err := floats(args, make([]float64, 0, len(args)))
	if err != nil || !ok {
		return sqltypes.Null, err
	}
	x, c := vals[:d], vals[d:]
	var s float64
	for a := 0; a < d; a++ {
		diff := x[a] - c[a]
		s += diff * diff
	}
	return sqltypes.NewDouble(s), nil
}

// clusterScore returns the 1-based subscript J of the minimum distance
// (J s.t. dJ ≤ dj for all j), the clustering score of §3.5.
func clusterScore(args []sqltypes.Value) (sqltypes.Value, error) {
	best, bestD := 0, math.Inf(1)
	for j, v := range args {
		if v.IsNull() {
			return sqltypes.Null, nil
		}
		f, ok := v.Float()
		if !ok {
			return sqltypes.Null, fmt.Errorf("score: non-numeric distance %v", v)
		}
		if f < bestD {
			best, bestD = j+1, f
		}
	}
	return sqltypes.NewBigInt(int64(best)), nil
}
