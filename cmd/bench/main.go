// Command bench regenerates the paper's evaluation: every table
// (1-6) and figure (1-6) plus the repository's ablations, printed as
// aligned text tables.
//
// Usage:
//
//	bench [-scale 0.05] [-partitions 20] [-runs 1] [-exp t1,f3,...]
//	      [-odbc-mbps 100] [-odbc-timescale 0] [-seed 2007]
//	      [-json out/] [-debug-addr :6060] [-check-metrics]
//
// -scale 1 runs the paper's full row counts (n up to 1.6M); the
// default 0.05 finishes in minutes on a laptop. -exp selects specific
// experiments; the default runs everything in paper order.
//
// -json writes each experiment's tables as BENCH_<id>.json artifacts;
// -debug-addr serves live /metrics and /debug/pprof while the bench
// runs; -check-metrics verifies afterwards (through a SQL query
// against sys.metrics) that the engine's scan counters actually moved,
// the smoke assertion CI runs.
//
// SIGINT/SIGTERM interrupts a run gracefully: the in-flight statement
// is cancelled through its run context, no further experiments start,
// the metrics gathered so far are flushed to stderr, and the process
// exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/engine/db"
	"repro/internal/engine/obs"
	"repro/internal/harness"
	"repro/internal/odbcsim"
)

func main() {
	scale := flag.Float64("scale", 0.05, "fraction of the paper's row counts (1 = full size)")
	partitions := flag.Int("partitions", 20, "engine parallelism (the paper's Teradata had 20 threads)")
	runs := flag.Int("runs", 1, "repetitions averaged per measurement (the paper used 5)")
	exp := flag.String("exp", "", "comma-separated experiment ids (t1..t6, f1..f6, a1..a8); empty runs all")
	odbcMbps := flag.Float64("odbc-mbps", 100, "modeled ODBC LAN bandwidth in megabits/s")
	odbcRow := flag.Int("odbc-row-overhead", 512, "modeled per-row ODBC framing overhead in bytes")
	timescale := flag.Float64("odbc-timescale", 0, "fraction of modeled ODBC delay actually slept (0 = report only)")
	seed := flag.Int64("seed", 2007, "workload seed")
	dir := flag.String("dir", "", "table directory (default: a temp dir per experiment)")
	jsonDir := flag.String("json", "", "write BENCH_<id>.json artifacts into this directory")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/queries and /debug/pprof on this address while running")
	checkMetrics := flag.Bool("check-metrics", false, "after running, assert via sys.metrics that the engine counters moved")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := harness.Config{
		Ctx:        ctx,
		Scale:      *scale,
		Partitions: *partitions,
		Runs:       *runs,
		Dir:        *dir,
		Seed:       *seed,
		Out:        os.Stdout,
		JSONDir:    *jsonDir,
		ODBC: odbcsim.Config{
			BytesPerSec:         *odbcMbps * 1e6 / 8,
			PerRowOverheadBytes: *odbcRow,
			TimeScale:           *timescale,
		},
	}

	if *debugAddr != "" {
		srv, err := db.Open(db.Options{}).ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("debug endpoint on http://%s/metrics\n", srv.Addr)
	}
	var ids []string
	if *exp != "" {
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	fmt.Printf("statsudf bench: scale=%g partitions=%d runs=%d seed=%d\n",
		*scale, *partitions, *runs, *seed)
	if err := harness.RunAll(cfg, ids); err != nil {
		if ctx.Err() != nil || errors.Is(err, context.Canceled) {
			// Graceful interrupt: report what ran and exit clean.
			fmt.Fprintln(os.Stderr, "bench: interrupted, metrics so far:")
			obs.Default.WritePrometheus(os.Stderr)
			return
		}
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if *checkMetrics {
		if err := assertMetrics(ids); err != nil {
			fmt.Fprintln(os.Stderr, "bench: metrics check failed:", err)
			os.Exit(1)
		}
		fmt.Println("metrics check: ok")
	}
}

// assertMetrics queries sys.metrics through the SQL path — metrics are
// process-wide, so a fresh in-memory instance sees everything the
// experiments did — and fails if the core engine counters are zero.
// When the a5 ablation ran (explicitly or because the whole suite
// did), the summary-cache counters must have moved too: a warm build
// with zero cache hits or zero incremental updates means the cache is
// silently falling back to rescans. Likewise a6 must have produced
// plan-cache hits: zero hits means every repeated statement was
// re-planned and the high-QPS path silently degraded to ad-hoc.
func assertMetrics(ids []string) error {
	d := db.Open(db.Options{})
	res, err := d.Exec("SELECT name, value FROM sys.metrics")
	if err != nil {
		return err
	}
	vals := make(map[string]float64, len(res.Rows))
	for _, row := range res.Rows {
		f, _ := row[1].Float()
		vals[row[0].Str()] = f
	}
	want := []string{
		"engine_rows_scanned_total",
		"engine_rows_inserted_total",
		"engine_queries_total",
		// Tail sampling keeps the first healthy trace deterministically,
		// so any bench run must retain at least one trace with spans.
		"engine_trace_retained_total",
		"engine_trace_spans_total",
	}
	ranSummary := len(ids) == 0
	ranPrepared := len(ids) == 0
	ranCluster := len(ids) == 0
	ranColumnar := len(ids) == 0
	for _, id := range ids {
		if id == "a5" {
			ranSummary = true
		}
		if id == "a6" {
			ranPrepared = true
		}
		if id == "a7" {
			ranCluster = true
		}
		if id == "a8" {
			ranColumnar = true
		}
	}
	if ranSummary {
		want = append(want,
			"engine_summary_hits",
			"engine_summary_incremental_updates",
		)
	}
	if ranPrepared {
		want = append(want, "engine_plan_cache_hits")
	}
	if ranCluster {
		// The scale-out ablation must actually have fanned statements
		// out, merged shard partials, and exercised the dead-shard
		// path; zeros mean the coordinator quietly ran everything
		// locally.
		want = append(want,
			"engine_cluster_fanouts_total",
			"engine_cluster_partials_merged_total",
			"engine_cluster_shard_errors_total",
		)
	}
	if ranColumnar {
		// The row-vs-columnar ablation must actually have taken the
		// block path (segments scanned, vector programs run) and
		// exercised at least one row-path fallback: zeros mean the
		// flag silently degraded to row-at-a-time everywhere, or that
		// unsupported shapes are no longer detected.
		want = append(want,
			"engine_columnar_blocks_scanned_total",
			"engine_columnar_vector_ops_total",
			"engine_columnar_fallbacks_total",
		)
	}
	for _, name := range want {
		if vals[name] <= 0 {
			return fmt.Errorf("%s = %v, want > 0 after a bench run", name, vals[name])
		}
	}
	return nil
}
