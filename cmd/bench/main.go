// Command bench regenerates the paper's evaluation: every table
// (1-6) and figure (1-6) plus the repository's ablations, printed as
// aligned text tables.
//
// Usage:
//
//	bench [-scale 0.05] [-partitions 20] [-runs 1] [-exp t1,f3,...]
//	      [-odbc-mbps 100] [-odbc-timescale 0] [-seed 2007]
//
// -scale 1 runs the paper's full row counts (n up to 1.6M); the
// default 0.05 finishes in minutes on a laptop. -exp selects specific
// experiments; the default runs everything in paper order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/harness"
	"repro/internal/odbcsim"
)

func main() {
	scale := flag.Float64("scale", 0.05, "fraction of the paper's row counts (1 = full size)")
	partitions := flag.Int("partitions", 20, "engine parallelism (the paper's Teradata had 20 threads)")
	runs := flag.Int("runs", 1, "repetitions averaged per measurement (the paper used 5)")
	exp := flag.String("exp", "", "comma-separated experiment ids (t1..t6, f1..f6, a1, a2); empty runs all")
	odbcMbps := flag.Float64("odbc-mbps", 100, "modeled ODBC LAN bandwidth in megabits/s")
	odbcRow := flag.Int("odbc-row-overhead", 512, "modeled per-row ODBC framing overhead in bytes")
	timescale := flag.Float64("odbc-timescale", 0, "fraction of modeled ODBC delay actually slept (0 = report only)")
	seed := flag.Int64("seed", 2007, "workload seed")
	dir := flag.String("dir", "", "table directory (default: a temp dir per experiment)")
	flag.Parse()

	cfg := harness.Config{
		Scale:      *scale,
		Partitions: *partitions,
		Runs:       *runs,
		Dir:        *dir,
		Seed:       *seed,
		Out:        os.Stdout,
		ODBC: odbcsim.Config{
			BytesPerSec:         *odbcMbps * 1e6 / 8,
			PerRowOverheadBytes: *odbcRow,
			TimeScale:           *timescale,
		},
	}
	var ids []string
	if *exp != "" {
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	fmt.Printf("statsudf bench: scale=%g partitions=%d runs=%d seed=%d\n",
		*scale, *partitions, *runs, *seed)
	if err := harness.RunAll(cfg, ids); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}
