// Command sqlsh is an interactive SQL shell for the embedded engine,
// with the paper's UDFs (nlq_list, nlq_str, nlq_block, linearregscore,
// fascore, kdistance, clusterscore) pre-registered.
//
// Usage:
//
//	sqlsh [-dir data/] [-partitions 20] [-debug-addr :6060] [-c "SELECT ..."] [file.sql]
//
// Statements end with ';'. Shell commands: \d lists tables, \d NAME
// shows a schema, \stats toggles per-query execution statistics
// (rows/bytes scanned, partition skew, phase times), \q quits.
// `EXPLAIN ANALYZE <select>` runs the statement and prints its span
// tree; the sys.metrics/sys.queries/sys.tables/sys.partitions virtual
// tables are queryable like any other table.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	enginedb "repro/internal/engine/db"
	"repro/internal/engine/exec"
	"repro/internal/engine/sqltypes"

	statsudf "repro"
)

// showStats controls whether a "-- stats: ..." line follows each
// result; the -stats flag sets it and \stats toggles it in the REPL.
var showStats bool

func main() {
	dir := flag.String("dir", "", "database directory (empty = in-memory)")
	partitions := flag.Int("partitions", 20, "table partitions")
	workers := flag.Int("workers", 0, "scan worker pool bound (0 = one per partition)")
	stats := flag.Bool("stats", false, "print execution statistics after each statement")
	command := flag.String("c", "", "execute this statement and exit")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/queries and /debug/pprof on this address")
	flag.Parse()
	showStats = *stats

	db, err := statsudf.Open(statsudf.Options{Dir: *dir, Partitions: *partitions, Workers: *workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqlsh:", err)
		os.Exit(1)
	}
	defer db.Close()

	if *debugAddr != "" {
		srv, err := db.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sqlsh:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "sqlsh: debug endpoint on http://%s/metrics\n", srv.Addr)
	}

	if *command != "" {
		if err := runStatement(db, *command, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "sqlsh:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "sqlsh:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := runScript(db, f, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "sqlsh:", err)
			os.Exit(1)
		}
		return
	}
	repl(db, os.Stdin, os.Stdout)
}

func repl(db *statsudf.DB, in io.Reader, out io.Writer) {
	fmt.Fprintln(out, "statsudf sql shell — statements end with ';', \\d lists tables, \\stats toggles stats, \\q quits")
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<24)
	var pending strings.Builder
	prompt := func() {
		if pending.Len() == 0 {
			fmt.Fprint(out, "sql> ")
		} else {
			fmt.Fprint(out, "...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if pending.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if quit := shellCommand(db, trimmed, out); quit {
				return
			}
			prompt()
			continue
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			stmt := pending.String()
			pending.Reset()
			if err := runStatement(db, stmt, out); err != nil {
				fmt.Fprintln(out, "error:", err)
			}
		}
		prompt()
	}
}

func shellCommand(db *statsudf.DB, cmd string, out io.Writer) (quit bool) {
	switch {
	case cmd == "\\q":
		return true
	case cmd == "\\stats":
		showStats = !showStats
		if showStats {
			fmt.Fprintln(out, "stats on")
		} else {
			fmt.Fprintln(out, "stats off")
		}
	case cmd == "\\d":
		names := db.Engine().TableNames()
		sort.Strings(names)
		for _, n := range names {
			t, err := db.Engine().Table(n)
			if err != nil {
				continue
			}
			fmt.Fprintf(out, "%s  (%d rows)\n", n, t.NumRows())
		}
		views := db.Engine().ViewNames()
		sort.Strings(views)
		for _, n := range views {
			fmt.Fprintf(out, "%s  (view)\n", n)
		}
		for _, n := range enginedb.SystemTableNames() {
			fmt.Fprintf(out, "%s  (system)\n", n)
		}
	case strings.HasPrefix(cmd, "\\d "):
		name := strings.TrimSpace(cmd[3:])
		t, err := db.Engine().Table(name)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return false
		}
		fmt.Fprintf(out, "%s %s, %d rows in %d partitions\n",
			t.Name(), t.Schema(), t.NumRows(), t.Partitions())
	default:
		fmt.Fprintln(out, "unknown command; try \\d or \\q")
	}
	return false
}

func runScript(db *statsudf.DB, r io.Reader, out io.Writer) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	res, err := db.ExecScript(string(data))
	if err != nil {
		return err
	}
	printResult(out, res)
	printStats(out, res)
	return nil
}

func runStatement(db *statsudf.DB, sql string, out io.Writer) error {
	if rest, ok := stripExplainAnalyze(sql); ok {
		return runExplainAnalyze(db, rest, out)
	}
	res, err := db.Exec(sql)
	if err != nil {
		return err
	}
	printResult(out, res)
	printStats(out, res)
	return nil
}

// stripExplainAnalyze detects an EXPLAIN ANALYZE prefix and returns
// the wrapped statement.
func stripExplainAnalyze(sql string) (string, bool) {
	s := strings.TrimSpace(sql)
	fields := strings.Fields(s)
	if len(fields) < 3 || !strings.EqualFold(fields[0], "EXPLAIN") || !strings.EqualFold(fields[1], "ANALYZE") {
		return "", false
	}
	idx := strings.Index(strings.ToUpper(s), "ANALYZE")
	return strings.TrimSpace(s[idx+len("ANALYZE"):]), true
}

// runExplainAnalyze executes the statement and prints its span tree
// instead of its rows: per-phase wall times with per-partition scan
// detail, followed by the one-line stats summary.
func runExplainAnalyze(db *statsudf.DB, sql string, out io.Writer) error {
	res, err := db.Exec(sql)
	if err != nil {
		return err
	}
	if res == nil || res.Stats == nil || res.Stats.Root == nil {
		fmt.Fprintln(out, "(no execution trace: statement did not scan)")
		return nil
	}
	fmt.Fprint(out, res.Stats.Root.RenderTree())
	fmt.Fprintf(out, "-- stats: %s\n", res.Stats)
	return nil
}

func printStats(out io.Writer, res *exec.Result) {
	if !showStats || res == nil || res.Stats == nil {
		return
	}
	fmt.Fprintf(out, "-- stats: %s\n", res.Stats)
}

func printResult(out io.Writer, res *exec.Result) {
	if res == nil {
		return
	}
	if res.Schema == nil {
		if res.Affected > 0 {
			fmt.Fprintf(out, "%d row(s) affected\n", res.Affected)
		} else {
			fmt.Fprintln(out, "ok")
		}
		return
	}
	names := res.Schema.Names()
	fmt.Fprintln(out, strings.Join(names, " | "))
	fmt.Fprintln(out, strings.Repeat("-", len(strings.Join(names, " | "))))
	const maxPrint = 200
	for i, row := range res.Rows {
		if i == maxPrint {
			fmt.Fprintf(out, "... (%d more rows)\n", len(res.Rows)-maxPrint)
			break
		}
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = renderValue(v)
		}
		fmt.Fprintln(out, strings.Join(cells, " | "))
	}
	fmt.Fprintf(out, "(%d rows)\n", len(res.Rows))
}

func renderValue(v sqltypes.Value) string {
	s := v.String()
	if len(s) > 60 {
		return s[:57] + "..."
	}
	return s
}
