// Command sqlsh is an interactive SQL shell for the embedded engine,
// with the paper's UDFs (nlq_list, nlq_str, nlq_block, linearregscore,
// fascore, kdistance, clusterscore) pre-registered.
//
// Usage:
//
//	sqlsh [-dir data/] [-partitions 20] [-debug-addr :6060] [-c "SELECT ..."] [file.sql]
//	sqlsh -connect host:port [-user alice] [-c "SELECT ..."] [file.sql]
//
// Without -connect the shell embeds the engine; with it, statements go
// over the wire protocol to a running twmd, through the pooled client
// (the session shows up in the server's sys.sessions, and a SELECT
// text repeated enough times is transparently switched onto the
// PREPARE/EXECUTE wire path — sys.prepared shows the server-side
// handles and plan-cache entries).
//
// Statements end with ';'. Shell commands: \d lists tables, \d NAME
// shows a schema, \stats toggles per-query execution statistics
// (rows/bytes scanned, partition skew, phase times), \q quits.
// `EXPLAIN ANALYZE <select>` runs the statement and prints its span
// tree; the sys.metrics/sys.queries/sys.tables/sys.partitions/
// sys.prepared virtual tables are queryable like any other table.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	enginedb "repro/internal/engine/db"
	"repro/internal/engine/exec"
	"repro/internal/engine/sqltypes"
	"repro/pkg/client"

	statsudf "repro"
)

// showStats controls whether a "-- stats: ..." line follows each
// result; the -stats flag sets it and \stats toggles it in the REPL.
var showStats bool

// engine abstracts where statements execute: the embedded database, or
// a remote twmd over the wire protocol.
type engine interface {
	// Run executes one statement, materialized.
	Run(sql string) (*exec.Result, error)
	// Script executes a semicolon-separated script.
	Script(sql string) (*exec.Result, error)
	// Tables prints the \d listing.
	Tables(out io.Writer)
	// Describe prints one table's schema (\d NAME).
	Describe(name string, out io.Writer)
	Close() error
}

func main() {
	dir := flag.String("dir", "", "database directory (empty = in-memory)")
	partitions := flag.Int("partitions", 20, "table partitions")
	workers := flag.Int("workers", 0, "scan worker pool bound (0 = one per partition)")
	stats := flag.Bool("stats", false, "print execution statistics after each statement")
	command := flag.String("c", "", "execute this statement and exit")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/queries and /debug/pprof on this address")
	connect := flag.String("connect", "", "connect to a twmd server at this address instead of embedding the engine")
	user := flag.String("user", "sqlsh", "user name reported to the server (with -connect)")
	flag.Parse()
	showStats = *stats

	var eng engine
	if *connect != "" {
		pool, err := client.Open(client.Config{Addr: *connect, User: *user, PoolSize: 1})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sqlsh:", err)
			os.Exit(1)
		}
		if err := pool.Ping(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "sqlsh: cannot reach %s: %v\n", *connect, err)
			os.Exit(1)
		}
		eng = &remoteEngine{pool: pool}
	} else {
		db, err := statsudf.Open(statsudf.Options{Dir: *dir, Partitions: *partitions, Workers: *workers})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sqlsh:", err)
			os.Exit(1)
		}
		if *debugAddr != "" {
			srv, err := db.ServeDebug(*debugAddr)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sqlsh:", err)
				os.Exit(1)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "sqlsh: debug endpoint on http://%s/metrics\n", srv.Addr)
		}
		eng = &localEngine{db: db}
	}
	defer eng.Close()

	if *command != "" {
		if err := runStatement(eng, *command, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "sqlsh:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "sqlsh:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := runScript(eng, f, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "sqlsh:", err)
			os.Exit(1)
		}
		return
	}
	repl(eng, os.Stdin, os.Stdout)
}

// localEngine embeds the database in-process.
type localEngine struct {
	db *statsudf.DB
}

func (l *localEngine) Run(sql string) (*exec.Result, error)    { return l.db.Exec(sql) }
func (l *localEngine) Script(sql string) (*exec.Result, error) { return l.db.ExecScript(sql) }
func (l *localEngine) Close() error                            { return l.db.Close() }

func (l *localEngine) Tables(out io.Writer) {
	names := l.db.Engine().TableNames()
	sort.Strings(names)
	for _, n := range names {
		t, err := l.db.Engine().Table(n)
		if err != nil {
			continue
		}
		fmt.Fprintf(out, "%s  (%d rows)\n", n, t.NumRows())
	}
	views := l.db.Engine().ViewNames()
	sort.Strings(views)
	for _, n := range views {
		fmt.Fprintf(out, "%s  (view)\n", n)
	}
	for _, n := range l.db.Engine().SysTableNames() {
		fmt.Fprintf(out, "%s  (system)\n", n)
	}
}

func (l *localEngine) Describe(name string, out io.Writer) {
	t, err := l.db.Engine().Table(name)
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	fmt.Fprintf(out, "%s %s, %d rows in %d partitions\n",
		t.Name(), t.Schema(), t.NumRows(), t.Partitions())
}

// remoteEngine sends statements to a twmd over the wire protocol.
type remoteEngine struct {
	pool *client.Pool
}

// toResult adapts a wire result to the local result shape, decoding
// the server's execution statistics so \stats and EXPLAIN ANALYZE work
// over the wire too.
func toResult(rows *client.Rows) *exec.Result {
	res := &exec.Result{Schema: rows.Schema, Rows: rows.Rows, Affected: rows.Affected}
	if rows.StatsJSON != "" {
		var st exec.Stats
		if err := json.Unmarshal([]byte(rows.StatsJSON), &st); err == nil {
			res.Stats = &st
		}
	}
	return res
}

func (r *remoteEngine) Run(sql string) (*exec.Result, error) {
	rows, err := r.pool.Query(context.Background(), sql)
	if err != nil {
		return nil, err
	}
	return toResult(rows), nil
}

func (r *remoteEngine) Script(sql string) (*exec.Result, error) {
	rows, err := r.pool.Exec(context.Background(), sql)
	if err != nil {
		return nil, err
	}
	return toResult(rows), nil
}

func (r *remoteEngine) Close() error { return r.pool.Close() }

func (r *remoteEngine) Tables(out io.Writer) {
	res, err := r.Run("SELECT name, num_rows FROM sys.tables ORDER BY name")
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	for _, row := range res.Rows {
		fmt.Fprintf(out, "%s  (%s rows)\n", row[0].Str(), row[1].String())
	}
	for _, n := range enginedb.SystemTableNames() {
		fmt.Fprintf(out, "%s  (system)\n", n)
	}
	fmt.Fprintln(out, "sys.sessions  (system)")
}

func (r *remoteEngine) Describe(name string, out io.Writer) {
	res, err := r.Run(fmt.Sprintf("SELECT * FROM %s LIMIT 1", name))
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	if res.Schema == nil {
		fmt.Fprintln(out, "error: no schema")
		return
	}
	fmt.Fprintf(out, "%s %s\n", name, res.Schema)
}

func repl(eng engine, in io.Reader, out io.Writer) {
	fmt.Fprintln(out, "statsudf sql shell — statements end with ';', \\d lists tables, \\stats toggles stats, \\q quits")
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<24)
	var pending strings.Builder
	prompt := func() {
		if pending.Len() == 0 {
			fmt.Fprint(out, "sql> ")
		} else {
			fmt.Fprint(out, "...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if pending.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if quit := shellCommand(eng, trimmed, out); quit {
				return
			}
			prompt()
			continue
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			stmt := pending.String()
			pending.Reset()
			if err := runStatement(eng, stmt, out); err != nil {
				fmt.Fprintln(out, "error:", err)
			}
		}
		prompt()
	}
}

func shellCommand(eng engine, cmd string, out io.Writer) (quit bool) {
	switch {
	case cmd == "\\q":
		return true
	case cmd == "\\stats":
		showStats = !showStats
		if showStats {
			fmt.Fprintln(out, "stats on")
		} else {
			fmt.Fprintln(out, "stats off")
		}
	case cmd == "\\d":
		eng.Tables(out)
	case strings.HasPrefix(cmd, "\\d "):
		eng.Describe(strings.TrimSpace(cmd[3:]), out)
	default:
		fmt.Fprintln(out, "unknown command; try \\d or \\q")
	}
	return false
}

func runScript(eng engine, r io.Reader, out io.Writer) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	res, err := eng.Script(string(data))
	if err != nil {
		return err
	}
	printResult(out, res)
	printStats(out, res)
	return nil
}

func runStatement(eng engine, sql string, out io.Writer) error {
	// Strip the shell's statement terminator: the client pool only
	// treats terminator-free single SELECTs as retry- and
	// auto-prepare-eligible.
	sql = strings.TrimSuffix(strings.TrimSpace(sql), ";")
	if rest, ok := stripExplainAnalyze(sql); ok {
		return runExplainAnalyze(eng, rest, out)
	}
	res, err := eng.Run(sql)
	if err != nil {
		return err
	}
	printResult(out, res)
	printStats(out, res)
	return nil
}

// stripExplainAnalyze detects an EXPLAIN ANALYZE prefix and returns
// the wrapped statement.
func stripExplainAnalyze(sql string) (string, bool) {
	s := strings.TrimSpace(sql)
	fields := strings.Fields(s)
	if len(fields) < 3 || !strings.EqualFold(fields[0], "EXPLAIN") || !strings.EqualFold(fields[1], "ANALYZE") {
		return "", false
	}
	idx := strings.Index(strings.ToUpper(s), "ANALYZE")
	return strings.TrimSpace(s[idx+len("ANALYZE"):]), true
}

// runExplainAnalyze executes the statement and prints its span tree
// instead of its rows: per-phase wall times with per-partition scan
// detail, followed by the one-line stats summary.
func runExplainAnalyze(eng engine, sql string, out io.Writer) error {
	res, err := eng.Run(sql)
	if err != nil {
		return err
	}
	if res == nil || res.Stats == nil || res.Stats.Root == nil {
		fmt.Fprintln(out, "(no execution trace: statement did not scan)")
		return nil
	}
	fmt.Fprint(out, res.Stats.Root.RenderTree())
	fmt.Fprintf(out, "-- stats: %s\n", res.Stats)
	if res.Stats.TraceID != "" {
		// The stamped trace id: look the statement up in sys.traces /
		// sys.spans (works remotely — the id rides the stats JSON).
		fmt.Fprintf(out, "-- trace: %s\n", res.Stats.TraceID)
	}
	return nil
}

func printStats(out io.Writer, res *exec.Result) {
	if !showStats || res == nil || res.Stats == nil {
		return
	}
	fmt.Fprintf(out, "-- stats: %s\n", res.Stats)
}

func printResult(out io.Writer, res *exec.Result) {
	if res == nil {
		return
	}
	if res.Schema == nil {
		if res.Affected > 0 {
			fmt.Fprintf(out, "%d row(s) affected\n", res.Affected)
		} else {
			fmt.Fprintln(out, "ok")
		}
		return
	}
	names := res.Schema.Names()
	fmt.Fprintln(out, strings.Join(names, " | "))
	fmt.Fprintln(out, strings.Repeat("-", len(strings.Join(names, " | "))))
	const maxPrint = 200
	for i, row := range res.Rows {
		if i == maxPrint {
			fmt.Fprintf(out, "... (%d more rows)\n", len(res.Rows)-maxPrint)
			break
		}
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = renderValue(v)
		}
		fmt.Fprintln(out, strings.Join(cells, " | "))
	}
	fmt.Fprintf(out, "(%d rows)\n", len(res.Rows))
}

func renderValue(v sqltypes.Value) string {
	s := v.String()
	if len(s) > 60 {
		return s[:57] + "..."
	}
	return s
}
