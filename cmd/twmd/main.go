// Command twmd is the network daemon: it opens (or creates) a
// database, registers the paper's UDFs, and serves the wire protocol
// so remote clients — sqlsh -connect, pkg/client pools, the bench
// harness — can create tables, build models, and score without linking
// the engine.
//
//	twmd -addr :7780 -dir data/ [-partitions 20] [-max-statements 64]
//	     [-max-waiting 64] [-idle-timeout 5m] [-batch-rows 256]
//	     [-debug-addr :6060] [-warm-summaries=false]
//	     [-log-level info] [-log-format json] [-slow-query 250ms]
//	     [-trace-sample 16]
//
// With -coordinator the daemon serves the same wire protocol but owns
// no rows: statements are planned as push-down subqueries against the
// shard fleet named by -shards (comma-separated addresses of plain
// twmd processes, in shard-id order) and their partial results are
// merged locally. sys.shards on the coordinator shows fleet health;
// -shard-id stamps a shard's own log lines with its position so a
// fleet's interleaved stderr is attributable.
//
//	twmd -coordinator -shards 127.0.0.1:7781,127.0.0.1:7782 -addr :7780
//	twmd -shard-id 0 -addr :7781 & twmd -shard-id 1 -addr :7782 &
//
// All daemon output is structured logging on stderr (JSON by default,
// one object per line) through log/slog; the engine's slow-query lines
// land in the same stream, each carrying its trace_id so a log line
// joins against sys.traces / /debug/traces. Every log record also
// feeds an in-memory flight recorder: on SIGQUIT (and on panic) the
// recent trace and log events are dumped to stderr for post-mortem.
//
// On startup (unless -warm-summaries=false) the daemon pre-warms the
// incremental summary cache for every reopened table that has DOUBLE
// columns: one scan per table up front, after which model builds and
// sys.summaries reads served over the wire run from the cache with
// zero partition scans until DDL invalidates an entry.
//
// SIGINT/SIGTERM triggers a graceful shutdown: the listener stops
// accepting, in-flight statements are cancelled through their run
// contexts, sessions drain (bounded by -drain-timeout), final metrics
// are flushed to stderr in Prometheus text format, and the process
// exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine/obs"
	"repro/internal/server"

	statsudf "repro"
)

// twmdConfig carries the parsed flags into run.
type twmdConfig struct {
	addr          string
	dir           string
	partitions    int
	workers       int
	maxStatements int
	maxWaiting    int
	idleTimeout   time.Duration
	batchRows     int
	drainTimeout  time.Duration
	debugAddr     string
	warmSummaries bool
	slowQuery     time.Duration
	traceSample   int
	columnar      bool

	coordinator bool
	shards      string
	shardID     int
}

func main() {
	var cfg twmdConfig
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:7780", "address to serve the wire protocol on")
	flag.StringVar(&cfg.dir, "dir", "", "database directory (empty = in-memory)")
	flag.IntVar(&cfg.partitions, "partitions", 20, "table partitions")
	flag.IntVar(&cfg.workers, "workers", 0, "scan worker pool bound (0 = one per partition)")
	flag.IntVar(&cfg.maxStatements, "max-statements", 0, "admission control: max concurrently executing statements (0 = default)")
	flag.IntVar(&cfg.maxWaiting, "max-waiting", 0, "admission control: max statements queued for a slot (0 = same as max-statements, negative = fail fast)")
	flag.DurationVar(&cfg.idleTimeout, "idle-timeout", 0, "drop connections idle longer than this (0 = default)")
	flag.IntVar(&cfg.batchRows, "batch-rows", 0, "rows per streamed result batch (0 = default)")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 15*time.Second, "graceful shutdown: how long to wait for sessions to drain")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "serve /metrics, /debug/queries, /debug/traces and /debug/pprof on this address")
	flag.BoolVar(&cfg.warmSummaries, "warm-summaries", true, "pre-warm the summary cache for reopened tables at startup")
	flag.BoolVar(&cfg.columnar, "columnar", false, "run eligible scans block-at-a-time over column segments (identical results, different performance)")
	flag.DurationVar(&cfg.slowQuery, "slow-query", 0, "log statements at or over this duration and retain their traces (0 = engine default)")
	flag.IntVar(&cfg.traceSample, "trace-sample", 0, "tail sampling: retain 1-in-N healthy traces (0 = engine default, 1 = all)")
	flag.BoolVar(&cfg.coordinator, "coordinator", false, "serve as a cluster coordinator over the shard fleet in -shards instead of storing rows locally")
	flag.StringVar(&cfg.shards, "shards", "", "comma-separated shard addresses, in shard-id order (requires -coordinator)")
	flag.IntVar(&cfg.shardID, "shard-id", -1, "this shard's position in the coordinator's -shards list; stamps log lines (-1 = standalone)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	logFormat := flag.String("log-format", "json", "log line format: json or text")
	flag.Parse()

	if err := setupLogging(*logLevel, *logFormat); err != nil {
		fmt.Fprintln(os.Stderr, "twmd:", err)
		os.Exit(1)
	}
	if cfg.shardID >= 0 {
		slog.SetDefault(slog.Default().With(slog.Int("shard_id", cfg.shardID)))
	}
	dumpFlightOnSigquit()
	defer func() {
		// A crashing daemon dumps the flight ring — the recent trace and
		// log events leading up to the panic — before dying.
		if r := recover(); r != nil {
			obs.Flight.WriteTo(os.Stderr)
			panic(r)
		}
	}()

	if err := run(cfg); err != nil {
		slog.Error("fatal", slog.String("error", err.Error()))
		os.Exit(1)
	}
}

// setupLogging installs the process-wide slog handler: leveled JSON (or
// text) on stderr, with every record teed into the flight recorder at
// all levels — the ring sees debug events even when stderr does not.
func setupLogging(level, format string) error {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var inner slog.Handler
	switch format {
	case "json":
		inner = slog.NewJSONHandler(os.Stderr, opts)
	case "text":
		inner = slog.NewTextHandler(os.Stderr, opts)
	default:
		return fmt.Errorf("bad -log-format %q: want json or text", format)
	}
	slog.SetDefault(slog.New(obs.NewFlightHandler(inner)))
	return nil
}

// dumpFlightOnSigquit dumps the flight ring on SIGQUIT without dying,
// so an operator can snapshot a live daemon's recent events.
func dumpFlightOnSigquit() {
	q := make(chan os.Signal, 1)
	signal.Notify(q, syscall.SIGQUIT)
	go func() {
		for range q {
			obs.Flight.WriteTo(os.Stderr)
		}
	}()
}

func run(cfg twmdConfig) error {
	if cfg.coordinator {
		return runCoordinator(cfg)
	}
	if cfg.shards != "" {
		return fmt.Errorf("-shards requires -coordinator")
	}
	d, err := statsudf.Open(statsudf.Options{
		Dir: cfg.dir, Partitions: cfg.partitions, Workers: cfg.workers,
		SlowQuery: cfg.slowQuery, TraceSampleN: cfg.traceSample,
		Columnar: cfg.columnar,
	})
	if err != nil {
		return err
	}
	defer d.Close()

	if cfg.warmSummaries {
		warmSummaryCache(d)
	}

	if cfg.debugAddr != "" {
		dbg, err := d.ServeDebug(cfg.debugAddr)
		if err != nil {
			return err
		}
		defer dbg.Close()
		slog.Info("debug endpoint up", slog.String("addr", dbg.Addr))
	}

	srv := server.New(d.Engine(), server.Config{
		Addr:          cfg.addr,
		MaxStatements: cfg.maxStatements,
		MaxWaiting:    cfg.maxWaiting,
		IdleTimeout:   cfg.idleTimeout,
		BatchRows:     cfg.batchRows,
	})
	if err := srv.Start(); err != nil {
		return err
	}
	slog.Info("serving wire protocol",
		slog.String("addr", srv.Addr()),
		slog.String("server_version", server.Version))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop() // a second signal kills immediately

	slog.Info("signal received, draining sessions")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		slog.Warn("drain incomplete", slog.String("error", err.Error()))
	}
	fmt.Fprintln(os.Stderr, "twmd: final metrics:")
	obs.Default.WritePrometheus(os.Stderr)
	slog.Info("bye")
	return nil
}

// runCoordinator serves the wire protocol with the cluster
// coordinator as the engine: a rowless local instance holds the
// catalog mirror, UDF registries, sys.* views and the coordinator's
// own query/trace observability, while every data-bearing statement
// fans out to the -shards fleet.
func runCoordinator(cfg twmdConfig) error {
	if cfg.shards == "" {
		return fmt.Errorf("-coordinator requires -shards")
	}
	if cfg.dir != "" {
		return fmt.Errorf("-coordinator stores no rows; drop -dir (shards own the data directories)")
	}
	local, err := statsudf.Open(statsudf.Options{
		Workers: cfg.workers, SlowQuery: cfg.slowQuery, TraceSampleN: cfg.traceSample,
	})
	if err != nil {
		return err
	}
	defer local.Close()

	coord, err := cluster.New(local.Engine(), cluster.Config{
		Shards:     strings.Split(cfg.shards, ","),
		Partitions: cfg.partitions,
	})
	if err != nil {
		return err
	}
	defer coord.Close()
	slog.Info("coordinating shard fleet",
		slog.Int("shards", coord.Shards()),
		slog.Int("partitions", cfg.partitions))

	if cfg.debugAddr != "" {
		dbg, err := local.ServeDebug(cfg.debugAddr)
		if err != nil {
			return err
		}
		defer dbg.Close()
		slog.Info("debug endpoint up", slog.String("addr", dbg.Addr))
	}

	srv := server.New(coord, server.Config{
		Addr:          cfg.addr,
		MaxStatements: cfg.maxStatements,
		MaxWaiting:    cfg.maxWaiting,
		IdleTimeout:   cfg.idleTimeout,
		BatchRows:     cfg.batchRows,
	})
	if err := srv.Start(); err != nil {
		return err
	}
	slog.Info("serving wire protocol",
		slog.String("addr", srv.Addr()),
		slog.String("server_version", server.Version),
		slog.Bool("coordinator", true))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	slog.Info("signal received, draining sessions")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		slog.Warn("drain incomplete", slog.String("error", err.Error()))
	}
	fmt.Fprintln(os.Stderr, "twmd: final metrics:")
	obs.Default.WritePrometheus(os.Stderr)
	slog.Info("bye")
	return nil
}

// warmSummaryCache pays one scan per reopened table now so the first
// model build a client issues runs from the cache. Tables without
// numeric columns (or otherwise unwarmable) are skipped with a note —
// the cache cold-starts them on first use.
func warmSummaryCache(d *statsudf.DB) {
	eng := d.Engine()
	for _, name := range eng.TableNames() {
		if _, _, err := eng.SummaryNLQ(context.Background(), name, nil, core.Triangular); err != nil {
			slog.Info("summary warm skipped", slog.String("table", name), slog.String("error", err.Error()))
			continue
		}
		slog.Info("summary cache warmed", slog.String("table", name))
	}
}
