// Command twmd is the network daemon: it opens (or creates) a
// database, registers the paper's UDFs, and serves the wire protocol
// so remote clients — sqlsh -connect, pkg/client pools, the bench
// harness — can create tables, build models, and score without linking
// the engine.
//
//	twmd -addr :7780 -dir data/ [-partitions 20] [-max-statements 64]
//	     [-max-waiting 64] [-idle-timeout 5m] [-batch-rows 256]
//	     [-debug-addr :6060] [-warm-summaries=false]
//
// On startup (unless -warm-summaries=false) the daemon pre-warms the
// incremental summary cache for every reopened table that has DOUBLE
// columns: one scan per table up front, after which model builds and
// sys.summaries reads served over the wire run from the cache with
// zero partition scans until DDL invalidates an entry.
//
// SIGINT/SIGTERM triggers a graceful shutdown: the listener stops
// accepting, in-flight statements are cancelled through their run
// contexts, sessions drain (bounded by -drain-timeout), final metrics
// are flushed to stderr in Prometheus text format, and the process
// exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/engine/obs"
	"repro/internal/server"

	statsudf "repro"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7780", "address to serve the wire protocol on")
	dir := flag.String("dir", "", "database directory (empty = in-memory)")
	partitions := flag.Int("partitions", 20, "table partitions")
	workers := flag.Int("workers", 0, "scan worker pool bound (0 = one per partition)")
	maxStatements := flag.Int("max-statements", 0, "admission control: max concurrently executing statements (0 = default)")
	maxWaiting := flag.Int("max-waiting", 0, "admission control: max statements queued for a slot (0 = same as max-statements, negative = fail fast)")
	idleTimeout := flag.Duration("idle-timeout", 0, "drop connections idle longer than this (0 = default)")
	batchRows := flag.Int("batch-rows", 0, "rows per streamed result batch (0 = default)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "graceful shutdown: how long to wait for sessions to drain")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/queries and /debug/pprof on this address")
	warmSummaries := flag.Bool("warm-summaries", true, "pre-warm the summary cache for reopened tables at startup")
	flag.Parse()

	if err := run(*addr, *dir, *partitions, *workers, *maxStatements, *maxWaiting,
		*idleTimeout, *batchRows, *drainTimeout, *debugAddr, *warmSummaries); err != nil {
		fmt.Fprintln(os.Stderr, "twmd:", err)
		os.Exit(1)
	}
}

func run(addr, dir string, partitions, workers, maxStatements, maxWaiting int,
	idleTimeout time.Duration, batchRows int, drainTimeout time.Duration, debugAddr string,
	warmSummaries bool) error {
	d, err := statsudf.Open(statsudf.Options{Dir: dir, Partitions: partitions, Workers: workers})
	if err != nil {
		return err
	}
	defer d.Close()

	if warmSummaries {
		warmSummaryCache(d)
	}

	if debugAddr != "" {
		dbg, err := d.ServeDebug(debugAddr)
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "twmd: debug endpoint on http://%s/metrics\n", dbg.Addr)
	}

	srv := server.New(d.Engine(), server.Config{
		Addr:          addr,
		MaxStatements: maxStatements,
		MaxWaiting:    maxWaiting,
		IdleTimeout:   idleTimeout,
		BatchRows:     batchRows,
	})
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "twmd: serving wire protocol on %s (%s)\n", srv.Addr(), server.Version)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop() // a second signal kills immediately

	fmt.Fprintln(os.Stderr, "twmd: signal received, draining sessions...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "twmd: drain incomplete:", err)
	}
	fmt.Fprintln(os.Stderr, "twmd: final metrics:")
	obs.Default.WritePrometheus(os.Stderr)
	fmt.Fprintln(os.Stderr, "twmd: bye")
	return nil
}

// warmSummaryCache pays one scan per reopened table now so the first
// model build a client issues runs from the cache. Tables without
// numeric columns (or otherwise unwarmable) are skipped with a note —
// the cache cold-starts them on first use.
func warmSummaryCache(d *statsudf.DB) {
	eng := d.Engine()
	for _, name := range eng.TableNames() {
		if _, _, err := eng.SummaryNLQ(context.Background(), name, nil, core.Triangular); err != nil {
			fmt.Fprintf(os.Stderr, "twmd: summary warm skipped for %s: %v\n", name, err)
			continue
		}
		fmt.Fprintf(os.Stderr, "twmd: summary cache warmed for %s\n", name)
	}
}
