// Command statlint is the repository's custom multichecker: it runs
// the engine-invariant analyzers over the packages matching its
// arguments (default ./...) and exits non-zero if any invariant is
// violated.
//
// Per-package analyzers: udfcontract, ctxscan, valuekind, logkeys.
// Whole-program
// analyzers (facts flow bottom-up over the dependency order, so run
// them over ./... rather than a single leaf package): lockreent,
// atomichygiene, poolcheck, metricscontract.
//
// Findings can be suppressed — one line at a time, with an audit trail
// — by `//statlint:ignore <analyzer> <reason>`; a bare ignore without
// a reason is itself an error.
//
// Usage:
//
//	go run ./cmd/statlint ./...
//	go run ./cmd/statlint -run ctxscan ./internal/engine/...
//	go run ./cmd/statlint -json ./... > statlint.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/atomichygiene"
	"repro/internal/analysis/ctxscan"
	"repro/internal/analysis/lockreent"
	"repro/internal/analysis/logkeys"
	"repro/internal/analysis/metricscontract"
	"repro/internal/analysis/poolcheck"
	"repro/internal/analysis/udfcontract"
	"repro/internal/analysis/valuekind"
)

var all = []*analysis.Analyzer{
	ctxscan.Analyzer,
	udfcontract.Analyzer,
	valuekind.Analyzer,
	lockreent.Analyzer,
	atomichygiene.Analyzer,
	poolcheck.Analyzer,
	metricscontract.Analyzer,
	logkeys.Analyzer,
}

// jsonDiagnostic is the machine-readable shape of one finding, stable
// for CI artifact consumers.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	runFlag := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the available analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: statlint [-run names] [-list] [-json] [packages]\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *runFlag != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runFlag, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "statlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "statlint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "statlint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "statlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
