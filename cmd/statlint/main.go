// Command statlint is the repository's custom multichecker: it runs
// the engine-invariant analyzers (udfcontract, ctxscan, valuekind)
// over the packages matching its arguments (default ./...) and exits
// non-zero if any invariant is violated.
//
// Usage:
//
//	go run ./cmd/statlint ./...
//	go run ./cmd/statlint -run ctxscan ./internal/engine/...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/ctxscan"
	"repro/internal/analysis/udfcontract"
	"repro/internal/analysis/valuekind"
)

var all = []*analysis.Analyzer{
	ctxscan.Analyzer,
	udfcontract.Analyzer,
	valuekind.Analyzer,
}

func main() {
	runFlag := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: statlint [-run names] [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *runFlag != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runFlag, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "statlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "statlint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "statlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
