// Command twm is a small warehouse-miner-style client for the embedded
// engine — the role Teradata Warehouse Miner plays in the paper: it
// generates SQL and UDF calls against the database, builds statistical
// models from the one-scan summary matrices, stores them in model
// tables and scores data sets.
//
// Subcommands (all take -dir for the database directory):
//
//	twm gen      -table X -n 100000 -d 8 [-k 16] [-noise 0.15] [-seed 1]
//	twm import   -table X -csv file.csv [-header]
//	twm summary  -table X -d 8 [-matrix triang] [-method udf|string|sql]
//	twm corr     -table X -d 8 [-top 10]
//	twm linreg   -table X -d 8 -y Y [-beta BETA]
//	twm pca      -table X -d 8 -k 2 [-basis corr|cov] [-mu MU] [-lambda LAMBDA]
//	twm kmeans   -table X -d 8 -k 4 [-incremental] [-c C] [-r R] [-w W]
//	twm score    -model reg|pca|cluster -table X -d 8 [-k 4] -out SCORES
//	twm export   -table X -out file.csv [-mbps 100] [-timescale 0]
//	twm sql      -q "SELECT ..."
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	statsudf "repro"
	"repro/internal/odbcsim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	if err := run(cmd, args); err != nil {
		fmt.Fprintln(os.Stderr, "twm:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: twm <gen|import|summary|corr|linreg|pca|kmeans|score|export|sql> [flags]
run "twm <subcommand> -h" for flags`)
}

// openFlags adds the flags every subcommand shares.
func openFlags(fs *flag.FlagSet) (dir *string, partitions *int) {
	dir = fs.String("dir", "twm-data", "database directory")
	partitions = fs.Int("partitions", 20, "table partitions")
	return
}

func open(dir string, partitions int) (*statsudf.DB, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	return statsudf.Open(statsudf.Options{Dir: dir, Partitions: partitions})
}

func run(cmd string, args []string) error {
	switch cmd {
	case "gen":
		return cmdGen(args)
	case "import":
		return cmdImport(args)
	case "summary":
		return cmdSummary(args)
	case "corr":
		return cmdCorr(args)
	case "linreg":
		return cmdLinReg(args)
	case "pca":
		return cmdPCA(args)
	case "kmeans":
		return cmdKMeans(args)
	case "score":
		return cmdScore(args)
	case "export":
		return cmdExport(args)
	case "sql":
		return cmdSQL(args)
	case "-h", "--help", "help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	dir, parts := openFlags(fs)
	table := fs.String("table", "X", "table to create")
	n := fs.Int("n", 100000, "rows")
	d := fs.Int("d", 8, "dimensions")
	k := fs.Int("k", 16, "mixture components")
	noise := fs.Float64("noise", 0.15, "uniform noise fraction")
	seed := fs.Int64("seed", 1, "generator seed")
	withY := fs.Bool("with-y", false, "add a planted linear Y column")
	fs.Parse(args)
	db, err := open(*dir, *parts)
	if err != nil {
		return err
	}
	defer db.Close()
	cfg := statsudf.MixtureConfig{N: *n, D: *d, K: *k, Noise: *noise, Seed: *seed}
	if *withY {
		beta := make([]float64, *d)
		for a := range beta {
			beta[a] = float64(a%5) - 2
		}
		if err := db.GenerateRegression(*table, cfg, 10, beta, 5); err != nil {
			return err
		}
	} else if err := db.Generate(*table, cfg); err != nil {
		return err
	}
	fmt.Printf("generated %s: n=%d d=%d k=%d noise=%g\n", *table, *n, *d, *k, *noise)
	return nil
}

func cmdImport(args []string) error {
	fs := flag.NewFlagSet("import", flag.ExitOnError)
	dir, parts := openFlags(fs)
	table := fs.String("table", "X", "table to create")
	path := fs.String("csv", "", "CSV file to import")
	header := fs.Bool("header", true, "first row is a header")
	fs.Parse(args)
	if *path == "" {
		return fmt.Errorf("import: -csv is required")
	}
	db, err := open(*dir, *parts)
	if err != nil {
		return err
	}
	defer db.Close()
	f, err := os.Open(*path)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := db.ImportCSV(*table, f, *header)
	if err != nil {
		return err
	}
	fmt.Printf("imported %d rows into %s\n", n, *table)
	return nil
}

func parseMethod(s string) (statsudf.SummaryMethod, error) {
	switch s {
	case "udf", "list":
		return statsudf.ViaUDF, nil
	case "string":
		return statsudf.ViaUDFString, nil
	case "sql":
		return statsudf.ViaSQL, nil
	}
	return 0, fmt.Errorf("unknown method %q (udf|string|sql)", s)
}

func parseMatrix(s string) (statsudf.MatrixType, error) {
	switch s {
	case "diag":
		return statsudf.Diagonal, nil
	case "triang", "":
		return statsudf.Triangular, nil
	case "full":
		return statsudf.Full, nil
	}
	return 0, fmt.Errorf("unknown matrix type %q (diag|triang|full)", s)
}

func cmdSummary(args []string) error {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	dir, parts := openFlags(fs)
	table := fs.String("table", "X", "table to summarize")
	d := fs.Int("d", 8, "dimensions (columns X1..Xd)")
	matrix := fs.String("matrix", "triang", "diag|triang|full")
	method := fs.String("method", "udf", "udf|string|sql")
	fs.Parse(args)
	db, err := open(*dir, *parts)
	if err != nil {
		return err
	}
	defer db.Close()
	mt, err := parseMatrix(*matrix)
	if err != nil {
		return err
	}
	m, err := parseMethod(*method)
	if err != nil {
		return err
	}
	s, err := db.Summary(*table, statsudf.DimColumns(*d), statsudf.SummaryOptions{Method: m, Matrix: mt})
	if err != nil {
		return err
	}
	fmt.Printf("n = %.0f\n", s.N)
	fmt.Print("L =")
	for _, v := range s.L {
		fmt.Printf(" %.4f", v)
	}
	fmt.Println()
	fmt.Println("Q =")
	for a := 0; a < s.D; a++ {
		for b := 0; b < s.D; b++ {
			fmt.Printf(" %12.4f", s.QAt(a, b))
		}
		fmt.Println()
	}
	return nil
}

func cmdCorr(args []string) error {
	fs := flag.NewFlagSet("corr", flag.ExitOnError)
	dir, parts := openFlags(fs)
	table := fs.String("table", "X", "table")
	d := fs.Int("d", 8, "dimensions")
	top := fs.Int("top", 10, "strongest pairs to print")
	fs.Parse(args)
	db, err := open(*dir, *parts)
	if err != nil {
		return err
	}
	defer db.Close()
	m, err := db.Correlation(*table, statsudf.DimColumns(*d))
	if err != nil {
		return err
	}
	fmt.Printf("correlation matrix (%d×%d) from n=%.0f rows; strongest pairs:\n", m.D, m.D, m.N)
	for _, p := range m.StrongestPairs(*top) {
		fmt.Println(" ", p)
	}
	return nil
}

func cmdLinReg(args []string) error {
	fs := flag.NewFlagSet("linreg", flag.ExitOnError)
	dir, parts := openFlags(fs)
	table := fs.String("table", "X", "table")
	d := fs.Int("d", 8, "predictor dimensions")
	y := fs.String("y", "Y", "dependent column")
	betaTable := fs.String("beta", "BETA", "model table to store β in")
	fs.Parse(args)
	db, err := open(*dir, *parts)
	if err != nil {
		return err
	}
	defer db.Close()
	m, err := db.LinearRegression(*table, statsudf.DimColumns(*d), *y)
	if err != nil {
		return err
	}
	fmt.Printf("beta0 = %.6f\n", m.Beta[0])
	for a := 1; a < len(m.Beta); a++ {
		fmt.Printf("beta%d = %.6f\n", a, m.Beta[a])
	}
	fmt.Printf("R² = %.4f, SSE = %.4f (n=%.0f)\n", m.R2, m.SSE, m.N)
	if err := db.StoreRegression(*betaTable, m); err != nil {
		return err
	}
	fmt.Printf("model stored in %s\n", *betaTable)
	return nil
}

func cmdPCA(args []string) error {
	fs := flag.NewFlagSet("pca", flag.ExitOnError)
	dir, parts := openFlags(fs)
	table := fs.String("table", "X", "table")
	d := fs.Int("d", 8, "dimensions")
	k := fs.Int("k", 2, "components")
	basis := fs.String("basis", "corr", "corr|cov")
	muTable := fs.String("mu", "MU", "mean model table")
	lambdaTable := fs.String("lambda", "LAMBDA", "loading model table")
	fs.Parse(args)
	db, err := open(*dir, *parts)
	if err != nil {
		return err
	}
	defer db.Close()
	b := statsudf.CorrelationBasis
	if *basis == "cov" {
		b = statsudf.CovarianceBasis
	} else if *basis != "corr" {
		return fmt.Errorf("unknown basis %q (corr|cov)", *basis)
	}
	m, err := db.PCA(*table, statsudf.DimColumns(*d), *k, b)
	if err != nil {
		return err
	}
	fmt.Printf("PCA: k=%d, explained variance = %.2f%%\n", m.K, 100*m.ExplainedVariance())
	for j, ev := range m.Eigen {
		fmt.Printf("  component %d: eigenvalue %.4f\n", j+1, ev)
	}
	if err := db.StorePCA(*muTable, *lambdaTable, m); err != nil {
		return err
	}
	fmt.Printf("model stored in %s, %s\n", *muTable, *lambdaTable)
	return nil
}

func cmdKMeans(args []string) error {
	fs := flag.NewFlagSet("kmeans", flag.ExitOnError)
	dir, parts := openFlags(fs)
	table := fs.String("table", "X", "table")
	d := fs.Int("d", 8, "dimensions")
	k := fs.Int("k", 4, "clusters")
	incremental := fs.Bool("incremental", false, "single-scan incremental variant")
	seed := fs.Int64("seed", 1, "seeding")
	cT := fs.String("c", "C", "centroid table")
	rT := fs.String("r", "R", "radius table")
	wT := fs.String("w", "W", "weight table")
	fs.Parse(args)
	db, err := open(*dir, *parts)
	if err != nil {
		return err
	}
	defer db.Close()
	m, err := db.KMeans(*table, statsudf.DimColumns(*d), *k,
		statsudf.KMeansOptions{Seed: *seed, Incremental: *incremental})
	if err != nil {
		return err
	}
	fmt.Printf("k-means: k=%d iters=%d SSE=%.2f\n", m.K, m.Iters, m.SSE)
	for j := 0; j < m.K; j++ {
		fmt.Printf("  cluster %d: W=%.3f C[0..2]=%.2f %.2f ...\n", j+1, m.W[j], m.C[j][0], m.C[j][min2(1, m.D-1)])
	}
	if err := db.StoreKMeans(*cT, *rT, *wT, m); err != nil {
		return err
	}
	fmt.Printf("model stored in %s, %s, %s\n", *cT, *rT, *wT)
	return nil
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func cmdScore(args []string) error {
	fs := flag.NewFlagSet("score", flag.ExitOnError)
	dir, parts := openFlags(fs)
	model := fs.String("model", "reg", "reg|pca|cluster")
	table := fs.String("table", "X", "data table")
	id := fs.String("id", "i", "id column")
	d := fs.Int("d", 8, "dimensions")
	k := fs.Int("k", 4, "components/clusters (pca, cluster)")
	out := fs.String("out", "SCORES", "output table")
	fs.Parse(args)
	db, err := open(*dir, *parts)
	if err != nil {
		return err
	}
	defer db.Close()
	cols := statsudf.DimColumns(*d)
	var n int64
	switch *model {
	case "reg":
		n, err = db.ScoreRegression(*table, *id, cols, "BETA", *out)
	case "pca":
		n, err = db.ScorePCA(*table, *id, cols, "MU", "LAMBDA", *out, *k)
	case "cluster":
		n, err = db.ScoreKMeans(*table, *id, cols, "C", *out, *k)
	default:
		return fmt.Errorf("unknown model %q (reg|pca|cluster)", *model)
	}
	if err != nil {
		return err
	}
	fmt.Printf("scored %d rows into %s (one table scan)\n", n, *out)
	return nil
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	dir, parts := openFlags(fs)
	table := fs.String("table", "X", "table to export")
	out := fs.String("out", "export.csv", "output file")
	mbps := fs.Float64("mbps", 100, "modeled ODBC LAN bandwidth (megabits/s)")
	timescale := fs.Float64("timescale", 0, "fraction of the modeled delay actually slept")
	fs.Parse(args)
	db, err := open(*dir, *parts)
	if err != nil {
		return err
	}
	defer db.Close()
	t, err := db.Engine().Table(*table)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := odbcsim.Export(t, f, odbcsim.Config{
		BytesPerSec: *mbps * 1e6 / 8,
		TimeScale:   *timescale,
	})
	if err != nil {
		return err
	}
	fmt.Printf("exported %d rows (%d payload bytes) in %v; modeled ODBC time %v\n",
		st.Rows, st.PayloadBytes, st.Elapsed.Round(1e6), st.Modeled.Round(1e6))
	return nil
}

func cmdSQL(args []string) error {
	fs := flag.NewFlagSet("sql", flag.ExitOnError)
	dir, parts := openFlags(fs)
	q := fs.String("q", "", "statement to execute")
	fs.Parse(args)
	if *q == "" {
		return fmt.Errorf("sql: -q is required")
	}
	db, err := open(*dir, *parts)
	if err != nil {
		return err
	}
	defer db.Close()
	res, err := db.Exec(*q)
	if err != nil {
		return err
	}
	if res.Schema != nil {
		fmt.Println(strings.Join(res.Schema.Names(), " | "))
		for _, row := range res.Rows {
			cells := make([]string, len(row))
			for j, v := range row {
				cells[j] = v.String()
			}
			fmt.Println(strings.Join(cells, " | "))
		}
		fmt.Printf("(%d rows)\n", len(res.Rows))
	} else {
		fmt.Printf("%d row(s) affected\n", res.Affected)
	}
	return nil
}
